//! Dispatch policies: FIFO, GEMV-coalescing batching, earliest-deadline
//! first, continuous batching and weighted fair queueing.
//!
//! The policy layer is split in two:
//!
//! * [`SchedulerPolicy`] is the *configuration* — a small `Copy` enum
//!   that lives in [`PodConfig`](crate::PodConfig), serializes into
//!   sweep labels and keeps pod specs comparable (`PartialEq`).
//! * [`SchedulingPolicy`] is the *behavior* — the trait the pod
//!   simulator actually dispatches through. [`SchedulerPolicy::build`]
//!   instantiates the matching implementation ([`FifoPolicy`],
//!   [`CoalescingPolicy`], [`EdfPolicy`], [`WfqPolicy`]); custom
//!   policies can implement the trait directly and run through
//!   [`simulate_pod_with_policy`](crate::simulate_pod_with_policy).
//!
//! Every built-in policy preserves **per-client FIFO**: a client's
//! requests are never reordered against each other, no matter how the
//! policy reorders *across* clients. See `docs/scheduling.md` for the
//! full semantics of each policy.
//!
//! # Examples
//!
//! Swapping the policy on a pod is a builder call — the three lines that
//! differ between a FIFO and an EDF experiment:
//!
//! ```
//! use axon_core::runtime::Architecture;
//! use axon_serve::{simulate_pod, PodConfig, SchedulerPolicy, TrafficConfig};
//!
//! let traffic = TrafficConfig::open_loop(1, 100, 2000.0);
//! let base = PodConfig::homogeneous(2, Architecture::Axon, 64);
//! let fifo = base.clone().with_scheduler(SchedulerPolicy::Fifo);
//! let edf = base.with_scheduler(SchedulerPolicy::Edf { max_batch: 8 });
//! let (f, e) = (simulate_pod(&fifo, &traffic), simulate_pod(&edf, &traffic));
//! assert_eq!(f.metrics.completed, e.metrics.completed);
//! ```

use crate::request::{coalesced_shape, Request};
use axon_core::GemmShape;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

/// How the pod picks work off the queue (the configuration half of the
/// policy layer; [`SchedulerPolicy::build`] yields the behavior).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Strict arrival order, one request per dispatch.
    Fifo,
    /// FIFO head plus up to `max_batch - 1` queued requests with the same
    /// [batch key](crate::Request::batch_key), fused into one GEMM.
    ///
    /// Per-client FIFO is preserved: a request never joins a batch while
    /// an earlier, incompatible request from the same client is still
    /// queued ahead of it.
    Batching {
        /// Maximum requests fused into one dispatch.
        max_batch: usize,
    },
    /// Earliest-deadline-first with coalescing: the head is the eligible
    /// request with the earliest [`Request::deadline`], which then fuses
    /// compatible requests exactly like [`SchedulerPolicy::Batching`].
    ///
    /// Tight-deadline decode GEMVs overtake loose-deadline prefills
    /// *across* clients — head-of-line blocking relief — while each
    /// client's own stream stays in order.
    Edf {
        /// Maximum requests fused into one dispatch.
        max_batch: usize,
    },
    /// EDF queue order plus vLLM-style continuous batching: the pod may
    /// admit late-arriving compatible decode GEMVs into an in-flight
    /// coalesced batch (up to `max_batch` total) instead of making them
    /// wait for the next dispatch.
    Continuous {
        /// Maximum requests fused into one dispatch, in-flight joins
        /// included.
        max_batch: usize,
    },
    /// Per-client weighted fair queueing with coalescing: the head comes
    /// from the eligible client with the least weight-normalized billed
    /// service, so one chatty tenant cannot starve the others. Weights
    /// come from [`PodConfig::client_weights`](crate::PodConfig)
    /// (missing entries default to 1.0).
    Wfq {
        /// Maximum requests fused into one dispatch.
        max_batch: usize,
    },
}

/// Front-door admission control: whether a request is allowed into the
/// scheduler queue at all, or shed before it can do damage.
///
/// Admission is the overload half of the scheduling story (see
/// `docs/traffic.md`): under sustained overload an accept-all queue
/// grows without bound and *every* request eventually misses its
/// deadline — goodput collapses. Shedding already-doomed requests keeps
/// the queue short enough that the requests actually served still meet
/// their SLOs.
///
/// The decision ([`AdmissionPolicy::review`]) is a pure function of the
/// [`AdmissionOutlook`] snapshot, so admission preserves the
/// pure-function-of-`(seed, config)` contract. Open-loop arrivals that
/// fail review are shed (a terminal
/// [`Shed`](crate::TraceEvent::Shed) lifecycle event); closed-loop
/// arrivals are never shed — rejection becomes *backpressure*, the
/// request re-offers every engine iteration until accepted and its
/// deadline budget restarts at the accept cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Admit everything (the pre-admission behavior, and the default).
    #[default]
    AcceptAll,
    /// Reject while the scheduler queue already holds `max_depth`
    /// requests (a classic bounded listen queue).
    QueueCap {
        /// Maximum queued requests admitted concurrently (>= 1
        /// enforced at review time).
        max_depth: usize,
    },
    /// Reject requests that are already doomed: the optimistic finish
    /// estimate (queued work fair-shared over the arrays, plus the
    /// request's own solo service time) lands past the deadline.
    DeadlineInfeasible,
}

/// Why admission control rejected a request
/// (rides on [`TraceEvent::Shed`](crate::TraceEvent::Shed)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// [`AdmissionPolicy::QueueCap`]: the queue was at its cap.
    QueueFull,
    /// [`AdmissionPolicy::DeadlineInfeasible`]: the finish estimate
    /// already missed the deadline at arrival.
    DeadlineInfeasible,
}

impl ShedReason {
    /// Short stable name (taxonomy key in `docs/traffic.md`).
    pub fn name(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::DeadlineInfeasible => "deadline_infeasible",
        }
    }
}

/// The deterministic system snapshot one admission review reads —
/// everything [`AdmissionPolicy::review`] is allowed to look at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionOutlook {
    /// Review cycle.
    pub now: u64,
    /// The candidate's absolute completion deadline.
    pub deadline: u64,
    /// Requests currently in the scheduler queue (or, at the cluster
    /// front door, outstanding on the chosen pod).
    pub queue_depth: usize,
    /// Optimistic solo service estimate for the candidate, in cycles.
    pub service_estimate: u64,
    /// Optimistic service cycles already queued ahead of the candidate.
    pub queued_work: u64,
    /// Arrays (or serving slots) the queued work fair-shares over.
    pub arrays: usize,
}

impl AdmissionOutlook {
    /// The outlook of an empty system at `now`: nothing queued, full
    /// fan-out. A candidate rejected even under this outlook can never
    /// be admitted by waiting — the signal the closed-loop backpressure
    /// path uses to admit permanently-infeasible requests instead of
    /// stalling forever.
    pub fn empty_system(&self) -> AdmissionOutlook {
        AdmissionOutlook {
            queue_depth: 0,
            queued_work: 0,
            ..*self
        }
    }
}

impl AdmissionPolicy {
    /// Short stable name (sweep labels).
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionPolicy::AcceptAll => "accept-all",
            AdmissionPolicy::QueueCap { .. } => "queue-cap",
            AdmissionPolicy::DeadlineInfeasible => "deadline-infeasible",
        }
    }

    /// Whether reviews under this policy read the service-estimate
    /// fields — lets the engine skip estimate construction entirely for
    /// [`AcceptAll`](AdmissionPolicy::AcceptAll) /
    /// [`QueueCap`](AdmissionPolicy::QueueCap), keeping the accept-all
    /// hot path bit-identical to the pre-admission engine.
    pub fn needs_estimates(&self) -> bool {
        matches!(self, AdmissionPolicy::DeadlineInfeasible)
    }

    /// Reviews one candidate: `None` admits, `Some(reason)` sheds.
    /// Pure — same outlook, same verdict.
    pub fn review(&self, o: &AdmissionOutlook) -> Option<ShedReason> {
        match *self {
            AdmissionPolicy::AcceptAll => None,
            AdmissionPolicy::QueueCap { max_depth } => {
                (o.queue_depth >= max_depth.max(1)).then_some(ShedReason::QueueFull)
            }
            AdmissionPolicy::DeadlineInfeasible => {
                let start = o.now.saturating_add(o.queued_work / o.arrays.max(1) as u64);
                (start.saturating_add(o.service_estimate) > o.deadline)
                    .then_some(ShedReason::DeadlineInfeasible)
            }
        }
    }
}

/// One dispatch unit: the fused requests and the GEMM actually executed.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// The coalesced requests, in queue order.
    pub requests: Vec<Request>,
    /// The executed GEMM (the head's shape, or the fused shape).
    pub shape: GemmShape,
}

impl Batch {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the batch is empty (never true for scheduler output).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The earliest deadline across the batch's requests.
    pub fn deadline(&self) -> u64 {
        self.requests
            .iter()
            .map(|r| r.deadline)
            .min()
            .unwrap_or(u64::MAX)
    }
}

/// The behavioral interface of a queue discipline: the pod simulator
/// calls [`next_batch`](SchedulingPolicy::next_batch) whenever an array
/// goes idle and [`on_dispatch`](SchedulingPolicy::on_dispatch) with the
/// billed cycles once the batch is placed (the feedback stateful
/// policies like WFQ need).
pub trait SchedulingPolicy {
    /// Short label for reports and sweep output.
    fn name(&self) -> &'static str;

    /// Removes and returns the next dispatch unit from `queue` at time
    /// `now`, or `None` if the queue is empty.
    fn next_batch(&mut self, queue: &mut VecDeque<Request>, now: u64) -> Option<Batch>;

    /// Notification that `r` was just appended to the back of the
    /// queue. Indexed policies maintain their head structures here; the
    /// default is a no-op. Policies must stay correct even when the
    /// hook is not called (they rebuild from the queue on a count
    /// mismatch), so external callers of `next_batch` need not wire it.
    fn on_enqueue(&mut self, _r: &Request) {}

    /// Notification that `r` was removed from the queue by the *pod*
    /// rather than by `next_batch` (continuous batching admits queued
    /// requests into in-flight batches). Same contract as
    /// [`on_enqueue`](SchedulingPolicy::on_enqueue): a no-op by
    /// default, and advisory — policies must survive missed calls.
    fn on_dequeue(&mut self, _r: &Request) {}

    /// Feedback after dispatch: the batch was billed `service_cycles`.
    fn on_dispatch(&mut self, _batch: &Batch, _service_cycles: u64) {}

    /// Feedback at completion: the batch finished after `billed_cycles`
    /// of *contended* service against a compute-only schedule of
    /// `baseline_cycles`. The difference is the bandwidth stall the
    /// batch actually occupied the machine for — fairness policies that
    /// only bill compute at dispatch time can charge the remainder
    /// here. Under [`MemoryModel::Unconstrained`](crate::MemoryModel)
    /// the two are equal, so implementations that credit the delta are
    /// exact no-ops there.
    fn on_complete(&mut self, _batch: &Batch, _billed_cycles: u64, _baseline_cycles: u64) {}
}

/// Coalesces queued requests compatible with `head` (already removed
/// from `queue`) into one batch of at most `max_batch` requests,
/// preserving per-client FIFO: a client whose earlier incompatible
/// request is still queued contributes nothing behind it.
fn coalesce_with_head(head: Request, queue: &mut VecDeque<Request>, max_batch: usize) -> Batch {
    let mut requests = vec![head];
    let mut shape = head.workload.shape;
    if let Some(key) = head.batch_key() {
        let mut blocked: HashSet<usize> = HashSet::new();
        let mut i = 0;
        while i < queue.len() && requests.len() < max_batch {
            let candidate = &queue[i];
            if !blocked.contains(&candidate.client) && candidate.batch_key() == Some(key) {
                let taken = queue.remove(i).expect("index in bounds");
                requests.push(taken);
            } else {
                blocked.insert(candidate.client);
                i += 1;
            }
        }
        shape = coalesced_shape(key, requests.len());
    }
    Batch { requests, shape }
}

/// Earliest deadline among the *eligible* queue positions: for each
/// client, only its oldest queued request may be dispatched next
/// (per-client FIFO). The pod's urgency checks (resume vs dispatch,
/// preemption) share this definition so the two layers can never
/// disagree on eligibility. Runs on every event, so it takes a caller
/// scratch set instead of allocating: a single pass where the first
/// queue entry per client is exactly the eligible set, and `min` over
/// deadlines is order-free.
pub(crate) fn eligible_min_deadline(
    queue: &VecDeque<Request>,
    seen: &mut HashSet<usize>,
) -> Option<u64> {
    seen.clear();
    let mut best: Option<u64> = None;
    for r in queue {
        if seen.insert(r.client) {
            best = Some(best.map_or(r.deadline, |b| b.min(r.deadline)));
        }
    }
    best
}

/// The queue position of the most urgent eligible request (ties by id,
/// so the pick is deterministic) — the request the pod's preemption
/// achievability guard sizes its contended service estimate for.
/// `(deadline, id)` is unique per request (ids are unique), so the
/// single-pass strict-min pick equals `min_by_key` over the eligible
/// indices exactly.
pub(crate) fn eligible_most_urgent(
    queue: &VecDeque<Request>,
    seen: &mut HashSet<usize>,
) -> Option<usize> {
    seen.clear();
    let mut best: Option<(u64, usize, usize)> = None;
    for (i, r) in queue.iter().enumerate() {
        if seen.insert(r.client) && best.is_none_or(|(d, id, _)| (r.deadline, r.id) < (d, id)) {
            best = Some((r.deadline, r.id, i));
        }
    }
    best.map(|(_, _, i)| i)
}

/// Strict arrival order, one request per dispatch.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoPolicy;

impl SchedulingPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn next_batch(&mut self, queue: &mut VecDeque<Request>, _now: u64) -> Option<Batch> {
        let head = queue.pop_front()?;
        let shape = head.workload.shape;
        Some(Batch {
            requests: vec![head],
            shape,
        })
    }
}

/// FIFO head with GEMV coalescing (the `Batching` policy).
#[derive(Debug, Clone, Copy)]
pub struct CoalescingPolicy {
    /// Maximum requests fused into one dispatch.
    pub max_batch: usize,
}

impl SchedulingPolicy for CoalescingPolicy {
    fn name(&self) -> &'static str {
        "coalescing"
    }

    fn next_batch(&mut self, queue: &mut VecDeque<Request>, _now: u64) -> Option<Batch> {
        let head = queue.pop_front()?;
        Some(coalesce_with_head(head, queue, self.max_batch))
    }
}

/// Sentinel for the indexed policies' element count meaning "the index
/// no longer mirrors the queue — rebuild before the next selection".
const INDEX_DESYNCED: usize = usize::MAX;

/// Earliest-deadline-first head selection with coalescing.
///
/// Head selection is *indexed*: a per-client FIFO mirror plus a min-heap
/// over each client's eligible (oldest) request, keyed
/// `(deadline, id, client)` — the same canonical tie-break the original
/// full-queue scan used, so selections are bit-identical. Heap entries
/// are lazily invalidated (an entry counts only while it still equals
/// its client's front); any queue mutation the policy did not observe is
/// caught by an element-count check and answered with a full rebuild, so
/// external callers that mutate the queue directly stay correct.
#[derive(Debug, Clone, Default)]
pub struct EdfPolicy {
    /// Maximum requests fused into one dispatch.
    pub max_batch: usize,
    /// Per-client FIFO of queued `(deadline, id)` pairs.
    fronts: HashMap<usize, VecDeque<(u64, usize)>>,
    /// Candidate heads; valid iff equal to `fronts[client].front()`.
    heads: BinaryHeap<Reverse<(u64, usize, usize)>>,
    /// Requests tracked by the index; `INDEX_DESYNCED` forces a rebuild.
    indexed: usize,
}

impl EdfPolicy {
    /// Creates the policy with an empty index.
    pub fn new(max_batch: usize) -> Self {
        EdfPolicy {
            max_batch,
            ..EdfPolicy::default()
        }
    }

    fn rebuild(&mut self, queue: &VecDeque<Request>) {
        self.fronts.clear();
        self.heads.clear();
        for r in queue {
            self.fronts
                .entry(r.client)
                .or_default()
                .push_back((r.deadline, r.id));
        }
        for (&client, fifo) in &self.fronts {
            let &(deadline, id) = fifo.front().expect("fronts entries are non-empty");
            self.heads.push(Reverse((deadline, id, client)));
        }
        self.indexed = queue.len();
    }

    /// Pops `client`'s front and, if a successor exists, promotes it
    /// into the head heap.
    fn pop_front_of(&mut self, client: usize) {
        let fifo = self.fronts.get_mut(&client).expect("client is tracked");
        fifo.pop_front();
        if let Some(&(deadline, id)) = fifo.front() {
            self.heads.push(Reverse((deadline, id, client)));
        } else {
            self.fronts.remove(&client);
        }
        self.indexed -= 1;
    }

    /// Repairs the index after `coalesce_with_head` removed `taken`
    /// (each client's removals are a prefix of its FIFO, in order).
    fn note_taken(&mut self, taken: &[Request]) {
        for r in taken {
            let front = self.fronts.get(&r.client).and_then(|f| f.front());
            if front.map(|&(_, id)| id) == Some(r.id) {
                self.pop_front_of(r.client);
            } else {
                self.indexed = INDEX_DESYNCED;
                return;
            }
        }
    }
}

impl SchedulingPolicy for EdfPolicy {
    fn name(&self) -> &'static str {
        "edf"
    }

    fn next_batch(&mut self, queue: &mut VecDeque<Request>, _now: u64) -> Option<Batch> {
        if self.indexed != queue.len() {
            self.rebuild(queue);
        }
        let (id, client) = loop {
            let &Reverse((deadline, id, client)) = self.heads.peek()?;
            if self.fronts.get(&client).and_then(|f| f.front()) == Some(&(deadline, id)) {
                break (id, client);
            }
            self.heads.pop();
        };
        let head_idx = queue
            .iter()
            .position(|r| r.id == id)
            .expect("indexed head is queued");
        self.heads.pop();
        self.pop_front_of(client);
        let head = queue.remove(head_idx).expect("index in bounds");
        let batch = coalesce_with_head(head, queue, self.max_batch);
        self.note_taken(&batch.requests[1..]);
        Some(batch)
    }

    fn on_enqueue(&mut self, r: &Request) {
        if self.indexed == INDEX_DESYNCED {
            return;
        }
        let fifo = self.fronts.entry(r.client).or_default();
        fifo.push_back((r.deadline, r.id));
        if fifo.len() == 1 {
            self.heads.push(Reverse((r.deadline, r.id, r.client)));
        }
        self.indexed += 1;
    }

    fn on_dequeue(&mut self, r: &Request) {
        if self.indexed == INDEX_DESYNCED {
            return;
        }
        let front = self.fronts.get(&r.client).and_then(|f| f.front());
        if front.map(|&(_, id)| id) == Some(r.id) {
            self.pop_front_of(r.client);
        } else {
            self.indexed = INDEX_DESYNCED;
        }
    }
}

/// An `Ord` view of `f64` via [`f64::total_cmp`] — exactly the
/// comparator the original WFQ full-queue scan used, so heap order and
/// scan order can never disagree. Equal iff bit-identical.
#[derive(Debug, Clone, Copy)]
struct TotalF64(f64);

impl PartialEq for TotalF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Per-client weighted fair queueing with coalescing.
///
/// Tracks the billed service cycles attributed to each client and always
/// serves the eligible client with the least weight-normalized service
/// so far (ties go to the lower client id, then arrival order). Billed
/// work is fed back through [`SchedulingPolicy::on_dispatch`]; each
/// request in a fused batch is attributed an equal share.
///
/// Selection is *indexed* like [`EdfPolicy`], with one twist: the heap
/// key is the client's weight-normalized service, which moves every time
/// credit lands. Rather than rebuilding, the internal `credit` step pushes
/// a fresh `(norm, client)` entry ("touch"); stale entries — whose norm
/// no longer bit-matches the client's current value, or whose client has
/// nothing queued — are discarded lazily at selection time. Duplicates
/// are harmless: all live entries for a client carry the same key.
#[derive(Debug, Clone)]
pub struct WfqPolicy {
    /// Maximum requests fused into one dispatch.
    pub max_batch: usize,
    weights: Vec<f64>,
    served: Vec<f64>,
    /// Per-client FIFO of queued request ids.
    fronts: HashMap<usize, VecDeque<usize>>,
    /// Candidate clients; valid iff the client has a front *and* the
    /// recorded norm still bit-matches `served/weight`.
    heads: BinaryHeap<Reverse<(TotalF64, usize)>>,
    /// Requests tracked by the index; `INDEX_DESYNCED` forces a rebuild.
    indexed: usize,
}

impl WfqPolicy {
    /// Creates the policy with the given per-client weights (clients
    /// beyond the slice get weight 1.0).
    pub fn new(max_batch: usize, weights: &[f64]) -> Self {
        assert!(
            weights.iter().all(|&w| w > 0.0),
            "WFQ weights must be positive"
        );
        WfqPolicy {
            max_batch,
            weights: weights.to_vec(),
            served: Vec::new(),
            fronts: HashMap::new(),
            heads: BinaryHeap::new(),
            indexed: 0,
        }
    }

    fn weight(&self, client: usize) -> f64 {
        self.weights.get(client).copied().unwrap_or(1.0)
    }

    fn served(&self, client: usize) -> f64 {
        self.served.get(client).copied().unwrap_or(0.0)
    }

    fn norm(&self, client: usize) -> TotalF64 {
        TotalF64(self.served(client) / self.weight(client))
    }

    /// Re-arms `client`'s heap entry at its current norm (no-op when the
    /// client has nothing queued — enqueue will arm it).
    fn touch(&mut self, client: usize) {
        if self.fronts.contains_key(&client) {
            let norm = self.norm(client);
            self.heads.push(Reverse((norm, client)));
        }
    }

    fn credit(&mut self, client: usize, cycles: f64) {
        if self.served.len() <= client {
            self.served.resize(client + 1, 0.0);
        }
        self.served[client] += cycles;
        self.touch(client);
    }

    fn rebuild(&mut self, queue: &VecDeque<Request>) {
        self.fronts.clear();
        self.heads.clear();
        for r in queue {
            self.fronts.entry(r.client).or_default().push_back(r.id);
        }
        let clients: Vec<usize> = self.fronts.keys().copied().collect();
        for client in clients {
            self.touch(client);
        }
        self.indexed = queue.len();
    }

    /// Pops `client`'s front id; re-arms the client if more is queued.
    fn pop_front_of(&mut self, client: usize) {
        let fifo = self.fronts.get_mut(&client).expect("client is tracked");
        fifo.pop_front();
        if fifo.is_empty() {
            self.fronts.remove(&client);
        } else {
            self.touch(client);
        }
        self.indexed -= 1;
    }

    /// Repairs the index after `coalesce_with_head` removed `taken`
    /// (each client's removals are a prefix of its FIFO, in order).
    fn note_taken(&mut self, taken: &[Request]) {
        for r in taken {
            if self.fronts.get(&r.client).and_then(|f| f.front()) == Some(&r.id) {
                self.pop_front_of(r.client);
            } else {
                self.indexed = INDEX_DESYNCED;
                return;
            }
        }
    }
}

impl SchedulingPolicy for WfqPolicy {
    fn name(&self) -> &'static str {
        "wfq"
    }

    fn next_batch(&mut self, queue: &mut VecDeque<Request>, _now: u64) -> Option<Batch> {
        if self.indexed != queue.len() {
            self.rebuild(queue);
        }
        let client = loop {
            let &Reverse((norm, client)) = self.heads.peek()?;
            if self.fronts.contains_key(&client) && norm == self.norm(client) {
                break client;
            }
            self.heads.pop();
        };
        let id = *self.fronts[&client].front().expect("fronts are non-empty");
        let head_idx = queue
            .iter()
            .position(|r| r.id == id)
            .expect("indexed head is queued");
        self.heads.pop();
        self.pop_front_of(client);
        let head = queue.remove(head_idx).expect("index in bounds");
        let batch = coalesce_with_head(head, queue, self.max_batch);
        self.note_taken(&batch.requests[1..]);
        Some(batch)
    }

    fn on_enqueue(&mut self, r: &Request) {
        if self.indexed == INDEX_DESYNCED {
            return;
        }
        let fifo = self.fronts.entry(r.client).or_default();
        fifo.push_back(r.id);
        if fifo.len() == 1 {
            self.touch(r.client);
        }
        self.indexed += 1;
    }

    fn on_dequeue(&mut self, r: &Request) {
        if self.indexed == INDEX_DESYNCED {
            return;
        }
        if self.fronts.get(&r.client).and_then(|f| f.front()) == Some(&r.id) {
            self.pop_front_of(r.client);
        } else {
            self.indexed = INDEX_DESYNCED;
        }
    }

    fn on_dispatch(&mut self, batch: &Batch, service_cycles: u64) {
        let share = service_cycles as f64 / batch.len() as f64;
        for r in &batch.requests {
            self.credit(r.client, share);
        }
    }

    /// Contention-true accounting: the compute schedule was credited at
    /// dispatch; the bandwidth stall (billed minus compute baseline) is
    /// only known at completion and is credited here, so a memory-hog
    /// tenant pays for the bandwidth it occupies, not just its MACs.
    /// Zero — bit for bit — under `MemoryModel::Unconstrained`.
    fn on_complete(&mut self, batch: &Batch, billed_cycles: u64, baseline_cycles: u64) {
        let stall = billed_cycles.saturating_sub(baseline_cycles);
        if stall == 0 {
            return;
        }
        let share = stall as f64 / batch.len() as f64;
        for r in &batch.requests {
            self.credit(r.client, share);
        }
    }
}

impl SchedulerPolicy {
    /// Short label for sweep output.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerPolicy::Fifo => "fifo",
            SchedulerPolicy::Batching { .. } => "coalescing",
            SchedulerPolicy::Edf { .. } => "edf",
            SchedulerPolicy::Continuous { .. } => "continuous",
            SchedulerPolicy::Wfq { .. } => "wfq",
        }
    }

    /// The coalescing limit (1 for FIFO).
    pub fn max_batch(&self) -> usize {
        match *self {
            SchedulerPolicy::Fifo => 1,
            SchedulerPolicy::Batching { max_batch }
            | SchedulerPolicy::Edf { max_batch }
            | SchedulerPolicy::Continuous { max_batch }
            | SchedulerPolicy::Wfq { max_batch } => max_batch,
        }
    }

    /// Whether the pod may admit late-arriving compatible requests into
    /// an in-flight batch (vLLM-style continuous batching).
    pub fn admits_inflight_joins(&self) -> bool {
        matches!(self, SchedulerPolicy::Continuous { .. })
    }

    /// Instantiates the behavioral policy. `client_weights` is only
    /// consulted by [`SchedulerPolicy::Wfq`].
    pub fn build(&self, client_weights: &[f64]) -> Box<dyn SchedulingPolicy> {
        match *self {
            SchedulerPolicy::Fifo => Box::new(FifoPolicy),
            SchedulerPolicy::Batching { max_batch } => Box::new(CoalescingPolicy { max_batch }),
            // Continuous batching uses EDF queue order; the in-flight
            // join mechanism lives in the pod, gated on
            // `admits_inflight_joins`.
            SchedulerPolicy::Edf { max_batch } | SchedulerPolicy::Continuous { max_batch } => {
                Box::new(EdfPolicy::new(max_batch))
            }
            SchedulerPolicy::Wfq { max_batch } => {
                Box::new(WfqPolicy::new(max_batch, client_weights))
            }
        }
    }

    /// Removes the next dispatch unit from `queue`, or `None` if the
    /// queue is empty. Convenience wrapper over [`SchedulerPolicy::build`]
    /// for stateless use at `now = 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use axon_serve::{RequestClass, RequestGenerator, SchedulerPolicy, TrafficConfig, WorkloadMix};
    /// use std::collections::VecDeque;
    ///
    /// let cfg = TrafficConfig::open_loop(1, 32, 10.0)
    ///     .with_mix(WorkloadMix::single(RequestClass::Decode));
    /// let trace = RequestGenerator::new(&cfg).open_loop_trace(10.0, 4);
    /// let mut queue: VecDeque<_> = trace.into_iter().collect();
    /// let batch = SchedulerPolicy::Batching { max_batch: 8 }
    ///     .take_next(&mut queue)
    ///     .unwrap();
    /// assert!(batch.len() >= 1 && batch.len() <= 8);
    /// assert_eq!(batch.shape.m, batch.len()); // decode fuses along M
    /// ```
    pub fn take_next(&self, queue: &mut VecDeque<Request>) -> Option<Batch> {
        self.build(&[]).next_batch(queue, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestClass;
    use axon_workloads::{GemmWorkload, WorkloadKind};

    fn req(id: usize, client: usize, m: usize, k: usize, n: usize) -> Request {
        Request {
            id,
            client,
            class: RequestClass::Decode,
            workload: GemmWorkload {
                name: "t",
                shape: GemmShape::new(m, k, n),
                kind: WorkloadKind::Gemv,
            },
            arrival: id as u64,
            deadline: 1000 + id as u64,
        }
    }

    fn req_deadline(id: usize, client: usize, deadline: u64) -> Request {
        Request {
            deadline,
            ..req(id, client, 1, 8, 16)
        }
    }

    #[test]
    fn fifo_takes_one_at_a_time() {
        let mut q: VecDeque<_> = [req(0, 0, 1, 8, 8), req(1, 0, 1, 8, 8)].into();
        let b = SchedulerPolicy::Fifo.take_next(&mut q).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.requests[0].id, 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn batching_fuses_compatible_gemvs() {
        let mut q: VecDeque<_> = [
            req(0, 0, 1, 8, 16),
            req(1, 1, 1, 8, 16),
            req(2, 2, 1, 9, 16), // different K: incompatible
            req(3, 3, 1, 8, 16),
        ]
        .into();
        let b = SchedulerPolicy::Batching { max_batch: 8 }
            .take_next(&mut q)
            .unwrap();
        let ids: Vec<_> = b.requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 3]);
        assert_eq!(b.shape, GemmShape::new(3, 8, 16));
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].id, 2);
    }

    #[test]
    fn batching_respects_max_batch() {
        let mut q: VecDeque<_> = (0..10).map(|i| req(i, i, 1, 8, 16)).collect();
        let b = SchedulerPolicy::Batching { max_batch: 4 }
            .take_next(&mut q)
            .unwrap();
        assert_eq!(b.len(), 4);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn batching_never_overtakes_within_a_client() {
        // Client 7 has an incompatible request (id 1) ahead of a
        // compatible one (id 2): id 2 must NOT join the batch.
        let mut q: VecDeque<_> = [
            req(0, 0, 1, 8, 16),
            req(1, 7, 5, 8, 16), // not batchable, client 7
            req(2, 7, 1, 8, 16), // batchable but must wait for id 1
            req(3, 3, 1, 8, 16),
        ]
        .into();
        let b = SchedulerPolicy::Batching { max_batch: 8 }
            .take_next(&mut q)
            .unwrap();
        let ids: Vec<_> = b.requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 3]);
        let left: Vec<_> = q.iter().map(|r| r.id).collect();
        assert_eq!(left, vec![1, 2]);
    }

    #[test]
    fn non_batchable_head_dispatches_alone() {
        let mut q: VecDeque<_> = [req(0, 0, 4, 8, 16), req(1, 1, 4, 8, 16)].into();
        let b = SchedulerPolicy::Batching { max_batch: 8 }
            .take_next(&mut q)
            .unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.shape, GemmShape::new(4, 8, 16));
    }

    #[test]
    fn empty_queue_yields_none() {
        let mut q = VecDeque::new();
        assert!(SchedulerPolicy::Fifo.take_next(&mut q).is_none());
        assert!(SchedulerPolicy::Edf { max_batch: 4 }
            .take_next(&mut q)
            .is_none());
        assert!(SchedulerPolicy::Wfq { max_batch: 4 }
            .take_next(&mut q)
            .is_none());
    }

    #[test]
    fn edf_picks_earliest_deadline_across_clients() {
        let mut q: VecDeque<_> = [
            req_deadline(0, 0, 900), // arrived first, loose deadline
            req_deadline(1, 1, 100), // tightest deadline: must go first
            req_deadline(2, 2, 500),
        ]
        .into();
        let b = SchedulerPolicy::Edf { max_batch: 1 }
            .take_next(&mut q)
            .unwrap();
        assert_eq!(b.requests[0].id, 1);
    }

    #[test]
    fn edf_respects_per_client_order() {
        // Client 0's second request has the tightest deadline, but its
        // first request is still queued: the first must go first.
        let mut q: VecDeque<_> = [
            req_deadline(0, 0, 900),
            req_deadline(1, 0, 50),
            req_deadline(2, 1, 400),
        ]
        .into();
        let b = SchedulerPolicy::Edf { max_batch: 1 }
            .take_next(&mut q)
            .unwrap();
        assert_eq!(b.requests[0].id, 2, "client 1's 400 beats client 0's 900");
        let b = SchedulerPolicy::Edf { max_batch: 1 }
            .take_next(&mut q)
            .unwrap();
        assert_eq!(b.requests[0].id, 0, "client 0 in order despite id 1's 50");
    }

    #[test]
    fn edf_coalesces_after_head_selection() {
        let mut q: VecDeque<_> = [
            req(0, 0, 64, 8, 16), // incompatible prefill-like head by arrival
            req(1, 1, 1, 8, 16),
            req(2, 2, 1, 8, 16),
        ]
        .into();
        // Deadlines: the GEMVs are tighter than the big kernel.
        q[0].deadline = 10_000;
        q[1].deadline = 100;
        q[2].deadline = 120;
        let b = SchedulerPolicy::Edf { max_batch: 8 }
            .take_next(&mut q)
            .unwrap();
        let ids: Vec<_> = b.requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 2], "EDF head coalesces compatible peers");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn wfq_serves_starved_client_first() {
        let mut p = WfqPolicy::new(4, &[1.0, 1.0]);
        // Client 0 has been billed heavily; client 1 not at all.
        p.credit(0, 1e6);
        let mut q: VecDeque<_> = [req(0, 0, 4, 8, 16), req(1, 1, 4, 9, 16)].into();
        let b = p.next_batch(&mut q, 0).unwrap();
        assert_eq!(b.requests[0].client, 1);
    }

    #[test]
    fn wfq_weights_scale_service() {
        // Equal billed service, but client 1 has 4x the weight: its
        // normalized service is lower, so it goes first.
        let mut p = WfqPolicy::new(4, &[1.0, 4.0]);
        p.credit(0, 1000.0);
        p.credit(1, 1000.0);
        let mut q: VecDeque<_> = [req(0, 0, 4, 8, 16), req(1, 1, 4, 9, 16)].into();
        let b = p.next_batch(&mut q, 0).unwrap();
        assert_eq!(b.requests[0].client, 1);
    }

    #[test]
    fn wfq_on_dispatch_attributes_shares() {
        let mut p = WfqPolicy::new(4, &[]);
        let mut q: VecDeque<_> = [req(0, 0, 1, 8, 16), req(1, 1, 1, 8, 16)].into();
        let b = p.next_batch(&mut q, 0).unwrap();
        assert_eq!(b.len(), 2);
        p.on_dispatch(&b, 1000);
        assert_eq!(p.served(0), 500.0);
        assert_eq!(p.served(1), 500.0);
    }

    #[test]
    fn continuous_builds_edf_and_admits_joins() {
        let policy = SchedulerPolicy::Continuous { max_batch: 8 };
        assert!(policy.admits_inflight_joins());
        assert!(!SchedulerPolicy::Edf { max_batch: 8 }.admits_inflight_joins());
        assert_eq!(policy.build(&[]).name(), "edf");
        assert_eq!(policy.name(), "continuous");
        assert_eq!(policy.max_batch(), 8);
    }
}

//! Dispatch policies: FIFO and GEMV-coalescing batching.

use crate::request::{coalesced_shape, Request};
use axon_core::GemmShape;
use std::collections::{HashSet, VecDeque};

/// How the pod picks work off the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Strict arrival order, one request per dispatch.
    Fifo,
    /// FIFO head plus up to `max_batch - 1` queued requests with the same
    /// [batch key](crate::Request::batch_key), fused into one GEMM.
    ///
    /// Per-client FIFO is preserved: a request never joins a batch while
    /// an earlier, incompatible request from the same client is still
    /// queued ahead of it.
    Batching {
        /// Maximum requests fused into one dispatch.
        max_batch: usize,
    },
}

/// One dispatch unit: the fused requests and the GEMM actually executed.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// The coalesced requests, in queue order.
    pub requests: Vec<Request>,
    /// The executed GEMM (the head's shape, or the fused shape).
    pub shape: GemmShape,
}

impl Batch {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the batch is empty (never true for scheduler output).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

impl SchedulerPolicy {
    /// Removes the next dispatch unit from `queue`, or `None` if the
    /// queue is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use axon_serve::{RequestClass, RequestGenerator, SchedulerPolicy, TrafficConfig, WorkloadMix};
    /// use std::collections::VecDeque;
    ///
    /// let cfg = TrafficConfig::open_loop(1, 32, 10.0)
    ///     .with_mix(WorkloadMix::single(RequestClass::Decode));
    /// let trace = RequestGenerator::new(&cfg).open_loop_trace(10.0, 4);
    /// let mut queue: VecDeque<_> = trace.into_iter().collect();
    /// let batch = SchedulerPolicy::Batching { max_batch: 8 }
    ///     .take_next(&mut queue)
    ///     .unwrap();
    /// assert!(batch.len() >= 1 && batch.len() <= 8);
    /// assert_eq!(batch.shape.m, batch.len()); // decode fuses along M
    /// ```
    pub fn take_next(&self, queue: &mut VecDeque<Request>) -> Option<Batch> {
        let head = queue.pop_front()?;
        let mut requests = vec![head];
        let mut shape = head.workload.shape;

        if let (SchedulerPolicy::Batching { max_batch }, Some(key)) = (*self, head.batch_key()) {
            // Clients with an earlier incompatible request still in the
            // queue: taking a later request of theirs would reorder their
            // stream.
            let mut blocked: HashSet<usize> = HashSet::new();
            let mut i = 0;
            while i < queue.len() && requests.len() < max_batch {
                let candidate = &queue[i];
                if !blocked.contains(&candidate.client) && candidate.batch_key() == Some(key) {
                    let taken = queue.remove(i).expect("index in bounds");
                    requests.push(taken);
                } else {
                    blocked.insert(candidate.client);
                    i += 1;
                }
            }
            shape = coalesced_shape(key, requests.len());
        }

        Some(Batch { requests, shape })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestClass;
    use axon_workloads::{GemmWorkload, WorkloadKind};

    fn req(id: usize, client: usize, m: usize, k: usize, n: usize) -> Request {
        Request {
            id,
            client,
            class: RequestClass::Decode,
            workload: GemmWorkload {
                name: "t",
                shape: GemmShape::new(m, k, n),
                kind: WorkloadKind::Gemv,
            },
            arrival: id as u64,
        }
    }

    #[test]
    fn fifo_takes_one_at_a_time() {
        let mut q: VecDeque<_> = [req(0, 0, 1, 8, 8), req(1, 0, 1, 8, 8)].into();
        let b = SchedulerPolicy::Fifo.take_next(&mut q).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.requests[0].id, 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn batching_fuses_compatible_gemvs() {
        let mut q: VecDeque<_> = [
            req(0, 0, 1, 8, 16),
            req(1, 1, 1, 8, 16),
            req(2, 2, 1, 9, 16), // different K: incompatible
            req(3, 3, 1, 8, 16),
        ]
        .into();
        let b = SchedulerPolicy::Batching { max_batch: 8 }
            .take_next(&mut q)
            .unwrap();
        let ids: Vec<_> = b.requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 3]);
        assert_eq!(b.shape, GemmShape::new(3, 8, 16));
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].id, 2);
    }

    #[test]
    fn batching_respects_max_batch() {
        let mut q: VecDeque<_> = (0..10).map(|i| req(i, i, 1, 8, 16)).collect();
        let b = SchedulerPolicy::Batching { max_batch: 4 }
            .take_next(&mut q)
            .unwrap();
        assert_eq!(b.len(), 4);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn batching_never_overtakes_within_a_client() {
        // Client 7 has an incompatible request (id 1) ahead of a
        // compatible one (id 2): id 2 must NOT join the batch.
        let mut q: VecDeque<_> = [
            req(0, 0, 1, 8, 16),
            req(1, 7, 5, 8, 16), // not batchable, client 7
            req(2, 7, 1, 8, 16), // batchable but must wait for id 1
            req(3, 3, 1, 8, 16),
        ]
        .into();
        let b = SchedulerPolicy::Batching { max_batch: 8 }
            .take_next(&mut q)
            .unwrap();
        let ids: Vec<_> = b.requests.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 3]);
        let left: Vec<_> = q.iter().map(|r| r.id).collect();
        assert_eq!(left, vec![1, 2]);
    }

    #[test]
    fn non_batchable_head_dispatches_alone() {
        let mut q: VecDeque<_> = [req(0, 0, 4, 8, 16), req(1, 1, 4, 8, 16)].into();
        let b = SchedulerPolicy::Batching { max_batch: 8 }
            .take_next(&mut q)
            .unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.shape, GemmShape::new(4, 8, 16));
    }

    #[test]
    fn empty_queue_yields_none() {
        let mut q = VecDeque::new();
        assert!(SchedulerPolicy::Fifo.take_next(&mut q).is_none());
    }
}

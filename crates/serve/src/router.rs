//! Request routing across a fleet of pods: the cluster-level analogue
//! of the single-pod scheduler split.
//!
//! The layer repeats the trait-extraction move the scheduler made
//! (`SchedulerPolicy` enum / `SchedulingPolicy` trait) one level up:
//!
//! * [`RouterPolicy`] is the *configuration* — a small `Copy` enum that
//!   lives in [`ClusterConfig`](crate::ClusterConfig), serializes into
//!   sweep labels and keeps cluster specs comparable.
//! * [`RoutingPolicy`] is the *behavior* — the trait the cluster engine
//!   consults on each client's first request (routing is
//!   session-sticky; see below). [`RouterPolicy::build`] instantiates
//!   the matching implementation; custom routers can implement the
//!   trait directly.
//!
//! ## Session affinity and per-client FIFO
//!
//! Every built-in router is **sticky**: a client is routed once (on its
//! first request) and its later requests follow, so each client's
//! stream lands on one pod and the single-pod per-client FIFO invariant
//! lifts to the fleet unchanged. Class-aware routers
//! ([`RouterPolicy::SloAware`], [`RouterPolicy::Disaggregated`]) are
//! sticky per `(client, class)` — a client's decode stream and its
//! prefill stream may land on different specialist pods, so FIFO is
//! pinned per `(client, class)` there (cross-class reordering is the
//! point of disaggregation). Affinity is re-established only when the
//! bound pod dies (see
//! [`ClusterPodConfig::fail_at`](crate::ClusterPodConfig)).
//!
//! ## Declaration-order invariance
//!
//! Order-insensitive routers break ties by a canonical pod key derived
//! from the pod's configuration, never by declaration position alone,
//! so permuting [`ClusterConfig::pods`](crate::ClusterConfig) permutes
//! the assignment without changing any request's service (pinned by the
//! routing-invariance property test). [`RouterPolicy::RoundRobin`] is
//! the deliberate exception: it deals clients in declaration order.

use crate::request::{Request, RequestClass};
use crate::rng::ServeRng;

/// What a pod specializes in under disaggregated routing
/// ([`RouterPolicy::Disaggregated`]); every other router ignores it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PodRole {
    /// Accepts any class (the fallback pool).
    #[default]
    General,
    /// Prefill/conv specialist: compute-heavy, loose-deadline classes.
    Prefill,
    /// Decode/GEMV specialist: latency-bound classes.
    Decode,
}

/// The router-side view of one pod at a routing decision: the
/// deterministic load estimate the cluster engine maintains (an L7
/// balancer's approximate counters, not the pod's exact event state).
#[derive(Debug, Clone)]
pub struct PodView<'a> {
    /// Declaration index in [`ClusterConfig::pods`](crate::ClusterConfig).
    pub index: usize,
    /// Canonical key derived from the pod's configuration — the
    /// declaration-order-free tie-breaker.
    pub key: &'a str,
    /// Arrays in the pod (the JSQ load normalizer).
    pub arrays: usize,
    /// How many of those arrays are Axon (architecture-aware routing).
    pub axon_arrays: usize,
    /// The pod's disaggregation role.
    pub role: PodRole,
    /// Estimated requests routed but not yet estimated complete.
    pub outstanding: usize,
    /// Cycle the pod's arrays come online (autoscale warm-up; 0 when
    /// already warm).
    pub ready_at: u64,
}

impl PodView<'_> {
    /// Whether the pod is majority-Axon (the fast-fill specialist the
    /// SLO-aware router steers latency-bound classes toward).
    pub fn majority_axon(&self) -> bool {
        2 * self.axon_arrays > self.arrays
    }
}

/// The behavioral interface of a routing discipline: called once per
/// new `(client)` — or `(client, class)` when
/// [`class_scoped`](RoutingPolicy::class_scoped) — with the fleet views
/// and the routable pod indices, in declaration order. Must return one
/// of `eligible`.
pub trait RoutingPolicy {
    /// Short label for reports and sweep output.
    fn name(&self) -> &'static str;

    /// Whether affinity is per `(client, class)` instead of per client
    /// (specialist routers that deliberately split a client's classes).
    fn class_scoped(&self) -> bool {
        false
    }

    /// Picks the pod for `req` at cycle `now`. `eligible` lists the
    /// routable pods (alive, active, not draining) in declaration
    /// order; `views` covers every pod, indexed by declaration.
    fn route(&mut self, req: &Request, now: u64, views: &[PodView], eligible: &[usize]) -> usize;
}

/// `eligible` re-sorted canonically: by pod key, then declaration
/// index. Distinct configurations order by configuration alone;
/// identical pods (interchangeable by symmetry) fall back to
/// declaration order, which permutes harmlessly.
fn canonical(views: &[PodView], eligible: &[usize]) -> Vec<usize> {
    let mut order = eligible.to_vec();
    order.sort_by(|&a, &b| views[a].key.cmp(views[b].key).then(a.cmp(&b)));
    order
}

/// Strictly-less comparison of per-array load (integer cross-multiply,
/// so no float enters a routing decision).
fn less_loaded(a: &PodView, b: &PodView) -> bool {
    (a.outstanding as u64) * (b.arrays as u64) < (b.outstanding as u64) * (a.arrays as u64)
}

/// The least-loaded pod of `order` (canonical order assumed): ties go
/// to the earliest canonical position.
fn pick_least_loaded(views: &[PodView], order: &[usize]) -> usize {
    let mut best = order[0];
    for &i in &order[1..] {
        if less_loaded(&views[i], &views[best]) {
            best = i;
        }
    }
    best
}

/// Whether `class` is latency-bound (tight SLO budget): the classes
/// the SLO-aware router steers toward fast-fill pods and the
/// disaggregated router onto decode specialists.
fn latency_bound(class: RequestClass) -> bool {
    matches!(class, RequestClass::Decode | RequestClass::Gemv)
}

/// How the cluster picks a pod for each new client (the configuration
/// half; [`RouterPolicy::build`] yields the behavior).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Deal new clients across pods in declaration order. The only
    /// declaration-order-sensitive router (by construction), and the
    /// hardware-oblivious baseline the sweeps beat.
    RoundRobin,
    /// Uniform random pod per new client (seeded from the traffic
    /// seed, so runs stay pure functions of `(seed, config)`).
    Random,
    /// Join-shortest-queue: the pod with the least estimated
    /// outstanding work per array.
    JoinShortestQueue,
    /// Power-of-two-choices: sample two pods, take the less loaded —
    /// near-JSQ balance from O(1) state probes.
    PowerOfTwoChoices,
    /// SLO-class-aware: latency-bound classes (decode, GEMV) prefer
    /// majority-Axon pods (halved operand-fill latency), loose classes
    /// prefer the rest; JSQ within the preferred set. Sticky per
    /// `(client, class)`.
    SloAware,
    /// Prefill/decode disaggregation: classes are routed to pods whose
    /// [`PodRole`] matches (decode/GEMV to [`PodRole::Decode`], the
    /// rest to [`PodRole::Prefill`]), falling back to
    /// [`PodRole::General`] pods, then to any; JSQ within the matching
    /// set. Sticky per `(client, class)`.
    Disaggregated,
}

impl RouterPolicy {
    /// Every built-in router, baseline first (sweep-ladder order).
    pub const ALL: [RouterPolicy; 6] = [
        RouterPolicy::RoundRobin,
        RouterPolicy::Random,
        RouterPolicy::JoinShortestQueue,
        RouterPolicy::PowerOfTwoChoices,
        RouterPolicy::SloAware,
        RouterPolicy::Disaggregated,
    ];

    /// Short label for sweep output.
    pub fn name(&self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::Random => "random",
            RouterPolicy::JoinShortestQueue => "jsq",
            RouterPolicy::PowerOfTwoChoices => "po2c",
            RouterPolicy::SloAware => "slo-aware",
            RouterPolicy::Disaggregated => "disaggregated",
        }
    }

    /// Instantiates the behavioral router. `seed` feeds the sampling
    /// routers ([`Random`](RouterPolicy::Random),
    /// [`PowerOfTwoChoices`](RouterPolicy::PowerOfTwoChoices)); the
    /// cluster engine passes the traffic seed.
    pub fn build(&self, seed: u64) -> Box<dyn RoutingPolicy> {
        match self {
            RouterPolicy::RoundRobin => Box::new(RoundRobinRouter { next: 0 }),
            RouterPolicy::Random => Box::new(RandomRouter {
                rng: ServeRng::new(seed),
            }),
            RouterPolicy::JoinShortestQueue => Box::new(JsqRouter),
            RouterPolicy::PowerOfTwoChoices => Box::new(PowerOfTwoRouter {
                rng: ServeRng::new(seed),
            }),
            RouterPolicy::SloAware => Box::new(SloAwareRouter),
            RouterPolicy::Disaggregated => Box::new(DisaggregatedRouter),
        }
    }
}

/// Declaration-order dealing (see [`RouterPolicy::RoundRobin`]).
#[derive(Debug, Clone)]
pub struct RoundRobinRouter {
    next: usize,
}

impl RoutingPolicy for RoundRobinRouter {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(
        &mut self,
        _req: &Request,
        _now: u64,
        _views: &[PodView],
        eligible: &[usize],
    ) -> usize {
        let pick = eligible[self.next % eligible.len()];
        self.next = self.next.wrapping_add(1);
        pick
    }
}

/// Seeded uniform choice (see [`RouterPolicy::Random`]).
#[derive(Debug, Clone)]
pub struct RandomRouter {
    rng: ServeRng,
}

impl RoutingPolicy for RandomRouter {
    fn name(&self) -> &'static str {
        "random"
    }

    fn route(&mut self, _req: &Request, _now: u64, views: &[PodView], eligible: &[usize]) -> usize {
        let order = canonical(views, eligible);
        order[self.rng.below(order.len())]
    }
}

/// Least estimated outstanding per array (see
/// [`RouterPolicy::JoinShortestQueue`]).
#[derive(Debug, Clone, Copy)]
pub struct JsqRouter;

impl RoutingPolicy for JsqRouter {
    fn name(&self) -> &'static str {
        "jsq"
    }

    fn route(&mut self, _req: &Request, _now: u64, views: &[PodView], eligible: &[usize]) -> usize {
        let order = canonical(views, eligible);
        pick_least_loaded(views, &order)
    }
}

/// Two samples, keep the less loaded (see
/// [`RouterPolicy::PowerOfTwoChoices`]).
#[derive(Debug, Clone)]
pub struct PowerOfTwoRouter {
    rng: ServeRng,
}

impl RoutingPolicy for PowerOfTwoRouter {
    fn name(&self) -> &'static str {
        "po2c"
    }

    fn route(&mut self, _req: &Request, _now: u64, views: &[PodView], eligible: &[usize]) -> usize {
        let order = canonical(views, eligible);
        if order.len() == 1 {
            return order[0];
        }
        let a = self.rng.below(order.len());
        // Second draw over the remaining slots so the pair is distinct.
        let mut b = self.rng.below(order.len() - 1);
        if b >= a {
            b += 1;
        }
        let (a, b) = (order[a], order[b]);
        if less_loaded(&views[b], &views[a]) {
            b
        } else {
            a
        }
    }
}

/// Architecture-aware class steering (see [`RouterPolicy::SloAware`]).
#[derive(Debug, Clone, Copy)]
pub struct SloAwareRouter;

impl RoutingPolicy for SloAwareRouter {
    fn name(&self) -> &'static str {
        "slo-aware"
    }

    fn class_scoped(&self) -> bool {
        true
    }

    fn route(&mut self, req: &Request, _now: u64, views: &[PodView], eligible: &[usize]) -> usize {
        let order = canonical(views, eligible);
        let tight = latency_bound(req.class);
        let preferred: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| views[i].majority_axon() == tight)
            .collect();
        pick_least_loaded(
            views,
            if preferred.is_empty() {
                &order
            } else {
                &preferred
            },
        )
    }
}

/// Role-matched specialist routing (see
/// [`RouterPolicy::Disaggregated`]).
#[derive(Debug, Clone, Copy)]
pub struct DisaggregatedRouter;

impl RoutingPolicy for DisaggregatedRouter {
    fn name(&self) -> &'static str {
        "disaggregated"
    }

    fn class_scoped(&self) -> bool {
        true
    }

    fn route(&mut self, req: &Request, _now: u64, views: &[PodView], eligible: &[usize]) -> usize {
        let order = canonical(views, eligible);
        let want = if latency_bound(req.class) {
            PodRole::Decode
        } else {
            PodRole::Prefill
        };
        for role in [want, PodRole::General] {
            let matched: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&i| views[i].role == role)
                .collect();
            if !matched.is_empty() {
                return pick_least_loaded(views, &matched);
            }
        }
        pick_least_loaded(views, &order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axon_core::GemmShape;
    use axon_workloads::{GemmWorkload, WorkloadKind};

    fn req(class: RequestClass) -> Request {
        Request {
            id: 0,
            client: 0,
            class,
            workload: GemmWorkload {
                name: "t",
                shape: GemmShape::new(1, 8, 16),
                kind: WorkloadKind::Gemv,
            },
            arrival: 0,
            deadline: 1000,
        }
    }

    fn view(index: usize, key: &str, arrays: usize, axon: usize, out: usize) -> PodView<'_> {
        PodView {
            index,
            key,
            arrays,
            axon_arrays: axon,
            role: PodRole::General,
            outstanding: out,
            ready_at: 0,
        }
    }

    #[test]
    fn round_robin_deals_in_declaration_order() {
        let mut r = RouterPolicy::RoundRobin.build(0);
        let views = [view(0, "b", 1, 0, 0), view(1, "a", 1, 0, 0)];
        let eligible = [0, 1];
        let picks: Vec<usize> = (0..4)
            .map(|_| r.route(&req(RequestClass::Decode), 0, &views, &eligible))
            .collect();
        assert_eq!(picks, vec![0, 1, 0, 1]);
    }

    #[test]
    fn jsq_normalizes_by_array_count() {
        let mut r = RouterPolicy::JoinShortestQueue.build(0);
        // 4 outstanding over 4 arrays (1/array) beats 2 over 1 array.
        let views = [view(0, "a", 1, 0, 2), view(1, "b", 4, 0, 4)];
        assert_eq!(r.route(&req(RequestClass::Decode), 0, &views, &[0, 1]), 1);
    }

    #[test]
    fn jsq_ties_break_by_key_not_declaration() {
        let mut r = RouterPolicy::JoinShortestQueue.build(0);
        let views = [view(0, "zzz", 2, 0, 1), view(1, "aaa", 2, 0, 1)];
        assert_eq!(
            r.route(&req(RequestClass::Decode), 0, &views, &[0, 1]),
            1,
            "equal load must break ties by canonical key"
        );
    }

    #[test]
    fn po2c_picks_the_less_loaded_of_its_pair() {
        let mut r = RouterPolicy::PowerOfTwoChoices.build(7);
        let views = [view(0, "a", 1, 0, 100), view(1, "b", 1, 0, 0)];
        // Only two pods: the pair is always {0, 1}, so every pick must
        // be the unloaded pod.
        for _ in 0..8 {
            assert_eq!(r.route(&req(RequestClass::Decode), 0, &views, &[0, 1]), 1);
        }
    }

    #[test]
    fn slo_aware_steers_decode_to_axon_majority() {
        let mut r = RouterPolicy::SloAware.build(0);
        let views = [view(0, "conv", 2, 0, 0), view(1, "axon", 2, 2, 50)];
        // Decode goes to the Axon pod even though it is busier...
        assert_eq!(r.route(&req(RequestClass::Decode), 0, &views, &[0, 1]), 1);
        // ...and prefill to the conventional pod.
        assert_eq!(r.route(&req(RequestClass::Prefill), 0, &views, &[0, 1]), 0);
        assert!(r.class_scoped());
    }

    #[test]
    fn disaggregated_matches_roles_with_fallback() {
        let mut r = RouterPolicy::Disaggregated.build(0);
        let mut views = [view(0, "a", 2, 0, 0), view(1, "b", 2, 0, 0)];
        views[0].role = PodRole::Prefill;
        views[1].role = PodRole::Decode;
        assert_eq!(r.route(&req(RequestClass::Decode), 0, &views, &[0, 1]), 1);
        assert_eq!(r.route(&req(RequestClass::Prefill), 0, &views, &[0, 1]), 0);
        assert_eq!(r.route(&req(RequestClass::Gemv), 0, &views, &[0, 1]), 1);
        // With the decode specialist ineligible, decode falls back.
        assert_eq!(r.route(&req(RequestClass::Decode), 0, &views, &[0]), 0);
    }

    #[test]
    fn names_are_stable() {
        for p in RouterPolicy::ALL {
            assert_eq!(p.build(0).name(), p.name());
        }
    }
}

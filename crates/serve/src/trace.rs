//! Request-lifecycle event tracing: typed, cycle-stamped events emitted
//! by the pod engine and the cluster router into a pluggable
//! [`TraceSink`].
//!
//! The serving stack is a pure function of its configuration, and the
//! tracing layer is built so that *stays true*: a sink observes the
//! simulation but can never influence it. Every emission site is guarded
//! by [`TraceSink::enabled`], the default [`NullSink`] reports disabled
//! (so the hot path pays one virtual call per site and skips all
//! payload construction), and sinks receive events by value — there is
//! no channel back into the engine. Attaching *any* sink therefore
//! yields the bit-identical [`ServingReport`](crate::ServingReport) /
//! [`ClusterReport`](crate::ClusterReport), asserted per scheduling
//! policy and per router in `crates/serve/tests/trace.rs`.
//!
//! Three concrete sinks ship with the crate:
//!
//! * [`RecordingSink`] — keeps every `(pod, event)` pair; feed it to
//!   [`chrome_trace_json`] for a Chrome trace-event export (loads in
//!   Perfetto / `chrome://tracing`) or to [`check_conservation`] for
//!   the lifecycle-accounting invariant.
//! * [`AggregatingSink`] — queue-depth / busy-array / stall time
//!   series plus per-phase latency [`Histogram`]s (time-in-queue vs
//!   time-in-service vs bandwidth stall) and the per-request
//!   [`RequestOutcome`] records that let tests pin the decomposition
//!   exactly.
//! * [`SimProfile`] — a self-profiler for the simulator itself:
//!   wall-clock requests simulated per second, events processed, retime
//!   passes and jobs touched per retime. The `perf_baseline` binary
//!   turns its [`ProfileReport`] into the committed `BENCH_*.json` perf
//!   trajectory (see `docs/observability.md`).
//!
//! # Examples
//!
//! ```
//! use axon_core::runtime::Architecture;
//! use axon_serve::{
//!     check_conservation, chrome_trace_json, simulate_pod, simulate_pod_traced, PodConfig,
//!     RecordingSink, TrafficConfig,
//! };
//!
//! let pod = PodConfig::homogeneous(2, Architecture::Axon, 32);
//! let traffic = TrafficConfig::open_loop(7, 40, 2000.0);
//! let mut sink = RecordingSink::default();
//! let traced = simulate_pod_traced(&pod, &traffic, &mut sink);
//! // Observer neutrality: the traced run is bit-identical to the plain one.
//! assert_eq!(traced, simulate_pod(&pod, &traffic));
//! // Every request's lifecycle balances.
//! check_conservation(&sink.events).unwrap();
//! // And the recording exports as Chrome trace-event JSON.
//! let json = chrome_trace_json(&sink.events, pod.clock_mhz);
//! assert!(json.contains("\"traceEvents\""));
//! ```

use crate::request::RequestClass;
use crate::scheduler::ShedReason;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Terminal payload shared by [`TraceEvent::Completed`] and
/// [`TraceEvent::DeadlineMissed`]: everything needed to decompose one
/// request's end-to-end latency into queue, service and stall phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Request id (issue order, unique fleet-wide).
    pub id: usize,
    /// Client stream.
    pub client: usize,
    /// Workload family.
    pub class: RequestClass,
    /// Dispatch sequence number of the serving job (pod-scoped).
    pub seq: usize,
    /// Index of the (first) array that served it.
    pub array: usize,
    /// Arrival cycle.
    pub arrival: u64,
    /// Dispatch (or in-flight join) cycle.
    pub dispatch: u64,
    /// Completion cycle.
    pub completion: u64,
    /// Absolute completion deadline.
    pub deadline: u64,
    /// Requests fused into the serving dispatch.
    pub batch_size: usize,
    /// Arrays the dispatch was sharded over (1 = no sharding).
    pub sharded_over: usize,
    /// This request's share of the dispatch's bandwidth-stall cycles.
    pub stall_cycles: u64,
}

impl RequestOutcome {
    /// Cycles spent queued before service.
    pub fn queue_cycles(&self) -> u64 {
        self.dispatch - self.arrival
    }

    /// Cycles in service.
    pub fn service_cycles(&self) -> u64 {
        self.completion - self.dispatch
    }

    /// Arrival-to-completion cycles.
    pub fn total_cycles(&self) -> u64 {
        self.completion - self.arrival
    }
}

/// One typed, cycle-stamped lifecycle event. Every variant carries the
/// absolute cycle it happened at (see [`TraceEvent::cycle`]).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A request entered the system (cycle = its arrival cycle).
    Arrived {
        /// Request id.
        id: usize,
        /// Client stream.
        client: usize,
        /// Workload family.
        class: RequestClass,
        /// Arrival cycle.
        cycle: u64,
    },
    /// The cluster router assigned a request to a pod.
    Routed {
        /// Request id.
        id: usize,
        /// Client stream.
        client: usize,
        /// Declaration index of the chosen pod.
        pod: usize,
        /// Routing cycle.
        cycle: u64,
    },
    /// A request was admitted into a pod's scheduler queue.
    Enqueued {
        /// Request id.
        id: usize,
        /// Client stream.
        client: usize,
        /// Admission cycle.
        cycle: u64,
    },
    /// A batch was dispatched onto one or more arrays.
    Dispatched {
        /// Dispatch sequence number (pod-scoped).
        seq: usize,
        /// Ids of the requests fused into the dispatch.
        ids: Vec<usize>,
        /// Index of the (first) serving array.
        array: usize,
        /// Arrays occupied (>1 = sharded).
        arrays: usize,
        /// Dispatch cycle.
        cycle: u64,
    },
    /// The sharding planner chose a scale-out grid for a dispatch.
    ShardPlanned {
        /// Dispatch sequence number.
        seq: usize,
        /// Grid rows.
        pr: usize,
        /// Grid columns.
        pc: usize,
        /// Decision cycle.
        cycle: u64,
    },
    /// The bandwidth-aware planner refused a scale-out grid the
    /// compute-only planner would have taken.
    ShardRefused {
        /// Sequence number the dispatch was issued under.
        seq: usize,
        /// Decision cycle.
        cycle: u64,
    },
    /// A queued request joined a running batch in flight (continuous
    /// batching).
    BatchJoined {
        /// Sequence number of the joined job.
        seq: usize,
        /// Id of the joining request.
        id: usize,
        /// Join cycle.
        cycle: u64,
    },
    /// The shared-memory model re-timed every running job after a
    /// concurrency change.
    Retimed {
        /// Running jobs touched by the pass.
        jobs: usize,
        /// Retime cycle.
        cycle: u64,
    },
    /// The pod-wide active demand changed: the bandwidth epoch every
    /// running job's tile walk is now timed under.
    BandwidthEpoch {
        /// Total active demand units (one per occupied array).
        total_weight: usize,
        /// Epoch cycle.
        cycle: u64,
    },
    /// A running job was scheduled for a tile-boundary checkpoint to
    /// make room for urgent work.
    Preempted {
        /// Sequence number of the victim job.
        seq: usize,
        /// Decision cycle.
        cycle: u64,
    },
    /// A scheduled checkpoint completed: the victim's partials drained
    /// and spilled, its array freed.
    CheckpointDrained {
        /// Sequence number of the suspended job.
        seq: usize,
        /// Cycle the checkpoint (drain + context spill) completed.
        cycle: u64,
    },
    /// A suspended job resumed on an idle compatible array.
    Resumed {
        /// Sequence number of the resumed job.
        seq: usize,
        /// Array it resumed on.
        array: usize,
        /// Resume cycle.
        cycle: u64,
    },
    /// A failed pod's unfinished request was re-routed to a survivor.
    Rerouted {
        /// Request id.
        id: usize,
        /// Declaration index of the dead pod.
        from_pod: usize,
        /// Declaration index of the rescue pod.
        to_pod: usize,
        /// Failure cycle.
        cycle: u64,
    },
    /// The autoscaler activated a spare pod (or re-opened a draining
    /// one).
    ScaleUp {
        /// Declaration index of the activated pod.
        pod: usize,
        /// Cycle its arrays come online.
        ready_at: u64,
        /// Activation cycle.
        cycle: u64,
    },
    /// The autoscaler started draining the most recent dynamic pod.
    ScaleDown {
        /// Declaration index of the draining pod.
        pod: usize,
        /// Drain cycle.
        cycle: u64,
    },
    /// A pod died (failure injection).
    PodFailed {
        /// Declaration index of the dead pod.
        pod: usize,
        /// Failure cycle.
        cycle: u64,
    },
    /// A request completed within its deadline (terminal).
    Completed(RequestOutcome),
    /// A request completed past its deadline (terminal).
    DeadlineMissed(RequestOutcome),
    /// Admission control rejected a request (terminal): it never
    /// entered a scheduler queue and was never served. See
    /// [`AdmissionPolicy`](crate::AdmissionPolicy).
    Shed {
        /// Request id.
        id: usize,
        /// Client stream.
        client: usize,
        /// Workload family.
        class: RequestClass,
        /// Rejection cycle.
        cycle: u64,
        /// Why admission rejected it.
        reason: ShedReason,
    },
}

impl TraceEvent {
    /// The absolute cycle the event is stamped with.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::Arrived { cycle, .. }
            | TraceEvent::Routed { cycle, .. }
            | TraceEvent::Enqueued { cycle, .. }
            | TraceEvent::Dispatched { cycle, .. }
            | TraceEvent::ShardPlanned { cycle, .. }
            | TraceEvent::ShardRefused { cycle, .. }
            | TraceEvent::BatchJoined { cycle, .. }
            | TraceEvent::Retimed { cycle, .. }
            | TraceEvent::BandwidthEpoch { cycle, .. }
            | TraceEvent::Preempted { cycle, .. }
            | TraceEvent::CheckpointDrained { cycle, .. }
            | TraceEvent::Resumed { cycle, .. }
            | TraceEvent::Rerouted { cycle, .. }
            | TraceEvent::ScaleUp { cycle, .. }
            | TraceEvent::ScaleDown { cycle, .. }
            | TraceEvent::PodFailed { cycle, .. }
            | TraceEvent::Shed { cycle, .. } => *cycle,
            TraceEvent::Completed(o) | TraceEvent::DeadlineMissed(o) => o.completion,
        }
    }

    /// Short stable name of the event kind (taxonomy key in
    /// `docs/observability.md`).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Arrived { .. } => "arrived",
            TraceEvent::Routed { .. } => "routed",
            TraceEvent::Enqueued { .. } => "enqueued",
            TraceEvent::Dispatched { .. } => "dispatched",
            TraceEvent::ShardPlanned { .. } => "shard_planned",
            TraceEvent::ShardRefused { .. } => "shard_refused",
            TraceEvent::BatchJoined { .. } => "batch_joined",
            TraceEvent::Retimed { .. } => "retimed",
            TraceEvent::BandwidthEpoch { .. } => "bandwidth_epoch",
            TraceEvent::Preempted { .. } => "preempted",
            TraceEvent::CheckpointDrained { .. } => "checkpoint_drained",
            TraceEvent::Resumed { .. } => "resumed",
            TraceEvent::Rerouted { .. } => "rerouted",
            TraceEvent::ScaleUp { .. } => "scale_up",
            TraceEvent::ScaleDown { .. } => "scale_down",
            TraceEvent::PodFailed { .. } => "pod_failed",
            TraceEvent::Completed(_) => "completed",
            TraceEvent::DeadlineMissed(_) => "deadline_missed",
            TraceEvent::Shed { .. } => "shed",
        }
    }

    /// Whether this is a terminal lifecycle event (exactly one per
    /// arrived request — the conservation law: arrivals = completions +
    /// deadline-missed + shed).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            TraceEvent::Completed(_) | TraceEvent::DeadlineMissed(_) | TraceEvent::Shed { .. }
        )
    }
}

/// Where the engines send lifecycle events.
///
/// Implementations observe; they can never mutate simulation state —
/// [`record`](TraceSink::record) receives events by value and nothing
/// flows back. Emission sites are guarded by
/// [`enabled`](TraceSink::enabled), so a disabled sink costs one
/// virtual call per site and no payload construction.
pub trait TraceSink {
    /// Whether the engine should construct and deliver events at all.
    /// Defaults to `true`; [`NullSink`] overrides to `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Receives one event from pod `pod` (declaration index; 0 for
    /// single-pod runs).
    fn record(&mut self, pod: usize, event: TraceEvent);

    /// Receives pod `pod`'s dispatch-planner counters once, when its
    /// loop finishes: plan-cache hits and misses, and candidate grids
    /// scored by cold planner passes.
    ///
    /// Deliberately *not* a [`TraceEvent`] and default no-op: the
    /// differential harness compares reports and event streams
    /// bit-for-bit against the reference engine, which has no plan
    /// cache — engine self-measurement must ride outside the compared
    /// surface.
    fn planner_stats(&mut self, pod: usize, hits: u64, misses: u64, grids_scored: u64) {
        let _ = (pod, hits, misses, grids_scored);
    }
}

/// The disabled sink: reports `enabled() == false`, so the engines skip
/// event construction entirely. Every untraced entry point
/// ([`simulate_pod`](crate::simulate_pod),
/// [`simulate_cluster`](crate::simulate_cluster), ...) runs with it.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _pod: usize, _event: TraceEvent) {}
}

/// Keeps every `(pod, event)` pair in emission order — the raw material
/// for [`chrome_trace_json`], [`check_conservation`] and
/// [`AggregatingSink::replay`].
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    /// The recorded events, in emission order.
    pub events: Vec<(usize, TraceEvent)>,
}

impl TraceSink for RecordingSink {
    fn record(&mut self, pod: usize, event: TraceEvent) {
        self.events.push((pod, event));
    }
}

/// A log2-bucketed latency histogram (bucket `i` counts values `v` with
/// `2^(i-1) <= v < 2^i`; bucket 0 counts zeros).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Count per log2 bucket (index = number of significant bits).
    pub buckets: Vec<u64>,
    /// Total values recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl Histogram {
    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let b = (u64::BITS - v.leading_zeros()) as usize;
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Aggregates the event stream into fleet-wide time series and
/// per-phase latency histograms.
///
/// The series are step functions recorded as `(cycle, value)` pairs,
/// one point per change: queue depth (`Enqueued` up; `Dispatched` /
/// `BatchJoined` down) and busy arrays (`Dispatched` / `Resumed` up;
/// `CheckpointDrained` and job completion down). The histograms
/// decompose every terminal request's end-to-end latency into
/// time-in-queue, time-in-service and the bandwidth-stall share of
/// service — and because the raw [`RequestOutcome`] records are kept,
/// the decomposition is testable exactly:
/// `queue_cycles + service_cycles == total_cycles` per request.
#[derive(Debug, Clone, Default)]
pub struct AggregatingSink {
    /// Fleet-wide queued-request count, one `(cycle, depth)` point per
    /// change.
    pub queue_depth: Vec<(u64, u64)>,
    /// Fleet-wide busy-array count, one `(cycle, busy)` point per
    /// change.
    pub busy_arrays: Vec<(u64, u64)>,
    /// Cumulative bandwidth-stall cycles, one `(cycle, total)` point
    /// per completion that carried stall.
    pub stall_series: Vec<(u64, u64)>,
    /// Time-in-queue histogram (dispatch - arrival).
    pub queue_hist: Histogram,
    /// Time-in-service histogram (completion - dispatch).
    pub service_hist: Histogram,
    /// Bandwidth-stall histogram (the stall share of service).
    pub stall_hist: Histogram,
    /// Every terminal outcome, in completion order.
    pub outcomes: Vec<RequestOutcome>,
    /// Count of every event kind seen, keyed by [`TraceEvent::name`].
    pub event_counts: BTreeMap<&'static str, u64>,
    depth: u64,
    busy: u64,
    stall_total: u64,
    /// `(pod, seq) -> arrays` for jobs whose completion has not yet
    /// freed its arrays.
    open_jobs: BTreeMap<(usize, usize), u64>,
}

impl AggregatingSink {
    /// Feeds a pre-recorded event stream (e.g. a
    /// [`RecordingSink`]'s) through the aggregator.
    pub fn replay(&mut self, events: &[(usize, TraceEvent)]) {
        for (pod, e) in events {
            self.record(*pod, e.clone());
        }
    }

    /// Peak queue depth over the run.
    pub fn max_queue_depth(&self) -> u64 {
        self.queue_depth.iter().map(|&(_, d)| d).max().unwrap_or(0)
    }

    /// Peak concurrently busy arrays over the run.
    pub fn max_busy_arrays(&self) -> u64 {
        self.busy_arrays.iter().map(|&(_, b)| b).max().unwrap_or(0)
    }

    fn step_queue(&mut self, cycle: u64, up: bool, by: u64) {
        self.depth = if up {
            self.depth + by
        } else {
            self.depth.saturating_sub(by)
        };
        self.queue_depth.push((cycle, self.depth));
    }

    fn step_busy(&mut self, cycle: u64, up: bool, by: u64) {
        self.busy = if up {
            self.busy + by
        } else {
            self.busy.saturating_sub(by)
        };
        self.busy_arrays.push((cycle, self.busy));
    }
}

impl TraceSink for AggregatingSink {
    fn record(&mut self, pod: usize, event: TraceEvent) {
        *self.event_counts.entry(event.name()).or_insert(0) += 1;
        match &event {
            TraceEvent::Enqueued { cycle, .. } => self.step_queue(*cycle, true, 1),
            TraceEvent::Dispatched {
                seq,
                ids,
                arrays,
                cycle,
                ..
            } => {
                self.step_queue(*cycle, false, ids.len() as u64);
                self.step_busy(*cycle, true, *arrays as u64);
                self.open_jobs.insert((pod, *seq), *arrays as u64);
            }
            TraceEvent::BatchJoined { cycle, .. } => self.step_queue(*cycle, false, 1),
            TraceEvent::CheckpointDrained { seq, cycle } => {
                let freed = self.open_jobs.get(&(pod, *seq)).copied().unwrap_or(1);
                self.step_busy(*cycle, false, freed);
            }
            TraceEvent::Resumed { seq, cycle, .. } => {
                self.step_busy(*cycle, true, 1);
                self.open_jobs.insert((pod, *seq), 1);
            }
            TraceEvent::Completed(o) | TraceEvent::DeadlineMissed(o) => {
                // The first terminal of a job frees its arrays; the
                // rest of a fused batch completes at the same cycle.
                if let Some(freed) = self.open_jobs.remove(&(pod, o.seq)) {
                    self.step_busy(o.completion, false, freed);
                }
                self.queue_hist.record(o.queue_cycles());
                self.service_hist.record(o.service_cycles());
                self.stall_hist.record(o.stall_cycles);
                if o.stall_cycles > 0 {
                    self.stall_total += o.stall_cycles;
                    self.stall_series.push((o.completion, self.stall_total));
                }
                self.outcomes.push(*o);
            }
            _ => {}
        }
    }
}

/// Self-profiles the simulator: how fast the event engine itself runs.
///
/// The wall clock starts at construction ([`SimProfile::new`]) and
/// [`finish`](SimProfile::finish) snapshots it into a
/// [`ProfileReport`] — requests simulated per wall-second, events
/// processed, retime passes and jobs touched per retime. This is the
/// sink behind the `perf_baseline` binary and the committed
/// `BENCH_*.json` trajectory.
#[derive(Debug, Clone)]
pub struct SimProfile {
    start: Instant,
    /// Events delivered to the sink.
    pub events: u64,
    /// Requests that reached a terminal event.
    pub completed: u64,
    /// Retime passes observed ([`TraceEvent::Retimed`]).
    pub retime_passes: u64,
    /// Total running jobs touched across all retime passes.
    pub retime_jobs_touched: u64,
    /// Dispatches observed.
    pub dispatches: u64,
    /// Requests admitted into a scheduler queue
    /// ([`TraceEvent::Enqueued`]).
    pub admitted: u64,
    /// Requests shed by admission control ([`TraceEvent::Shed`]).
    pub shed: u64,
    /// Dispatch-plan cache hits ([`TraceSink::planner_stats`]).
    pub plan_cache_hits: u64,
    /// Dispatch-plan cache misses (cold planner passes).
    pub plan_cache_misses: u64,
    /// Candidate grids scored by cold planner passes.
    pub plan_grids_scored: u64,
}

impl SimProfile {
    /// Starts the wall clock.
    pub fn new() -> Self {
        SimProfile {
            start: Instant::now(),
            events: 0,
            completed: 0,
            retime_passes: 0,
            retime_jobs_touched: 0,
            dispatches: 0,
            admitted: 0,
            shed: 0,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
            plan_grids_scored: 0,
        }
    }

    /// Snapshots the profile into a report (the wall clock keeps
    /// running; `finish` may be called repeatedly).
    pub fn finish(&self) -> ProfileReport {
        let wall_s = self.start.elapsed().as_secs_f64();
        ProfileReport {
            wall_s,
            requests: self.completed,
            requests_per_wall_s: if wall_s > 0.0 {
                self.completed as f64 / wall_s
            } else {
                0.0
            },
            events: self.events,
            dispatches: self.dispatches,
            requests_admitted: self.admitted,
            requests_shed: self.shed,
            retime_passes: self.retime_passes,
            retime_jobs_touched: self.retime_jobs_touched,
            mean_jobs_per_retime: if self.retime_passes == 0 {
                0.0
            } else {
                self.retime_jobs_touched as f64 / self.retime_passes as f64
            },
            plan_cache_hits: self.plan_cache_hits,
            plan_cache_misses: self.plan_cache_misses,
            plan_grids_scored: self.plan_grids_scored,
        }
    }
}

impl Default for SimProfile {
    fn default() -> Self {
        SimProfile::new()
    }
}

impl TraceSink for SimProfile {
    fn record(&mut self, _pod: usize, event: TraceEvent) {
        self.events += 1;
        match event {
            TraceEvent::Retimed { jobs, .. } => {
                self.retime_passes += 1;
                self.retime_jobs_touched += jobs as u64;
            }
            TraceEvent::Dispatched { .. } => self.dispatches += 1,
            TraceEvent::Enqueued { .. } => self.admitted += 1,
            TraceEvent::Shed { .. } => self.shed += 1,
            TraceEvent::Completed(_) | TraceEvent::DeadlineMissed(_) => self.completed += 1,
            _ => {}
        }
    }

    fn planner_stats(&mut self, _pod: usize, hits: u64, misses: u64, grids_scored: u64) {
        self.plan_cache_hits += hits;
        self.plan_cache_misses += misses;
        self.plan_grids_scored += grids_scored;
    }
}

/// What [`SimProfile::finish`] reports: the simulator's own speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileReport {
    /// Wall-clock seconds profiled.
    pub wall_s: f64,
    /// Requests that reached a terminal event.
    pub requests: u64,
    /// Requests simulated per wall-clock second — the headline
    /// trajectory number the CI regression gate watches.
    pub requests_per_wall_s: f64,
    /// Trace events processed.
    pub events: u64,
    /// Dispatches issued.
    pub dispatches: u64,
    /// Requests admitted into a scheduler queue.
    pub requests_admitted: u64,
    /// Requests shed by admission control.
    pub requests_shed: u64,
    /// Retime passes run by the shared-memory model.
    pub retime_passes: u64,
    /// Total running jobs touched across all retime passes.
    pub retime_jobs_touched: u64,
    /// Mean jobs touched per retime pass.
    pub mean_jobs_per_retime: f64,
    /// Dispatch-plan cache hits across all pods.
    pub plan_cache_hits: u64,
    /// Dispatch-plan cache misses (cold planner passes).
    pub plan_cache_misses: u64,
    /// Candidate grids scored by cold planner passes (the `1×1`
    /// no-shard baseline included).
    pub plan_grids_scored: u64,
}

/// Checks the lifecycle-conservation laws over a recorded event stream:
///
/// * every request with an [`Arrived`](TraceEvent::Arrived) event has
///   exactly one `Arrived` and exactly one terminal event — arrivals =
///   [`Completed`](TraceEvent::Completed) +
///   [`DeadlineMissed`](TraceEvent::DeadlineMissed) +
///   [`Shed`](TraceEvent::Shed);
/// * a served request (terminal `Completed` / `DeadlineMissed`) was
///   [`Enqueued`](TraceEvent::Enqueued) exactly once; a
///   [`Shed`](TraceEvent::Shed) request was *never* enqueued (admission
///   rejects at the front door);
/// * every [`Rerouted`](TraceEvent::Rerouted) request still reaches a
///   terminal event (at its rescue pod);
/// * per job, [`Preempted`](TraceEvent::Preempted) /
///   [`CheckpointDrained`](TraceEvent::CheckpointDrained) /
///   [`Resumed`](TraceEvent::Resumed) counts balance exactly;
/// * every served terminal event's job was actually
///   [`Dispatched`](TraceEvent::Dispatched).
///
/// # Errors
///
/// Returns a description of the first violated law.
pub fn check_conservation(events: &[(usize, TraceEvent)]) -> Result<(), String> {
    let mut arrived: BTreeMap<usize, u64> = BTreeMap::new();
    let mut enqueued: BTreeMap<usize, u64> = BTreeMap::new();
    let mut terminal: BTreeMap<usize, u64> = BTreeMap::new();
    let mut shed: BTreeMap<usize, u64> = BTreeMap::new();
    let mut rerouted: BTreeSet<usize> = BTreeSet::new();
    // (pod, seq) -> (preempted, drained, resumed)
    let mut jobs: BTreeMap<(usize, usize), (u64, u64, u64)> = BTreeMap::new();
    let mut dispatched: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut terminal_seqs: BTreeSet<(usize, usize)> = BTreeSet::new();

    for (pod, e) in events {
        match e {
            TraceEvent::Arrived { id, .. } => *arrived.entry(*id).or_insert(0) += 1,
            TraceEvent::Enqueued { id, .. } => *enqueued.entry(*id).or_insert(0) += 1,
            TraceEvent::Rerouted { id, .. } => {
                rerouted.insert(*id);
            }
            TraceEvent::Dispatched { seq, .. } => {
                dispatched.insert((*pod, *seq));
            }
            TraceEvent::Preempted { seq, .. } => jobs.entry((*pod, *seq)).or_default().0 += 1,
            TraceEvent::CheckpointDrained { seq, .. } => {
                jobs.entry((*pod, *seq)).or_default().1 += 1
            }
            TraceEvent::Resumed { seq, .. } => jobs.entry((*pod, *seq)).or_default().2 += 1,
            TraceEvent::Completed(o) | TraceEvent::DeadlineMissed(o) => {
                *terminal.entry(o.id).or_insert(0) += 1;
                terminal_seqs.insert((*pod, o.seq));
            }
            TraceEvent::Shed { id, .. } => {
                *terminal.entry(*id).or_insert(0) += 1;
                *shed.entry(*id).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    for (&id, &n) in &arrived {
        if n != 1 {
            return Err(format!("request {id}: {n} Arrived events (want 1)"));
        }
        let enq = enqueued.get(&id).copied().unwrap_or(0);
        if shed.get(&id).copied().unwrap_or(0) > 0 {
            if enq != 0 {
                return Err(format!("request {id}: Shed but also Enqueued"));
            }
        } else if enq != 1 {
            return Err(format!(
                "request {id}: Arrived but not Enqueued exactly once"
            ));
        }
        match terminal.get(&id).copied().unwrap_or(0) {
            1 => {}
            n => return Err(format!("request {id}: {n} terminal events (want 1)")),
        }
    }
    for &id in terminal.keys() {
        if !arrived.contains_key(&id) {
            return Err(format!("request {id}: terminal event without Arrived"));
        }
    }
    for &id in &rerouted {
        if terminal.get(&id).copied().unwrap_or(0) != 1 {
            return Err(format!(
                "request {id}: Rerouted but never reached a terminal"
            ));
        }
    }
    for (&(pod, seq), &(p, d, r)) in &jobs {
        if p != d || d != r {
            return Err(format!(
                "pod {pod} job {seq}: preempted {p} / drained {d} / resumed {r} unbalanced"
            ));
        }
    }
    for &(pod, seq) in &terminal_seqs {
        if !dispatched.contains(&(pod, seq)) {
            return Err(format!("pod {pod} job {seq}: terminal without Dispatched"));
        }
    }
    Ok(())
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Exports a recorded event stream as Chrome trace-event JSON — the
/// format `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
/// load directly.
///
/// Layout: one *process* per pod; one *thread track per array* carrying
/// `"X"` (complete) execution slices — dispatch-to-checkpoint and
/// resume-to-completion segments — plus one *thread track per client*
/// carrying its requests' queueing slices; and one `"b"`/`"e"` *async
/// span per request* from arrival to its terminal event. Preemptions,
/// refused shards, failures and autoscale actions appear as instant
/// events; retime passes and bandwidth epochs as `"C"` counter tracks.
/// Timestamps are microseconds (`cycle / clock_mhz`).
pub fn chrome_trace_json(events: &[(usize, TraceEvent)], clock_mhz: f64) -> String {
    let ts = |cycle: u64| cycle as f64 / clock_mhz;
    let mut parts: Vec<String> = Vec::new();

    // Discover the track universe.
    let mut pods: BTreeSet<usize> = BTreeSet::new();
    let mut arrays: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut clients: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (pod, e) in events {
        pods.insert(*pod);
        match e {
            TraceEvent::Dispatched { array, .. } | TraceEvent::Resumed { array, .. } => {
                arrays.insert((*pod, *array));
            }
            TraceEvent::Enqueued { client, .. } | TraceEvent::Arrived { client, .. } => {
                clients.insert((*pod, *client));
            }
            TraceEvent::Completed(o) | TraceEvent::DeadlineMissed(o) => {
                arrays.insert((*pod, o.array));
                clients.insert((*pod, o.client));
            }
            _ => {}
        }
    }
    /// Client tracks sit above the array tracks in each process.
    const CLIENT_TID_BASE: usize = 10_000;
    for &p in &pods {
        parts.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{p},"tid":0,"args":{{"name":"pod {p}"}}}}"#
        ));
    }
    for &(p, a) in &arrays {
        parts.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":{p},"tid":{a},"args":{{"name":"array {a}"}}}}"#
        ));
    }
    for &(p, c) in &clients {
        let tid = CLIENT_TID_BASE + c;
        parts.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":{p},"tid":{tid},"args":{{"name":"client {c}"}}}}"#
        ));
    }

    // Open execution segments per (pod, seq): (start cycle, array, batch).
    let mut open_exec: BTreeMap<(usize, usize), (u64, usize, usize)> = BTreeMap::new();
    // Open queue slices per (pod, id): (enqueue cycle, client).
    let mut open_queue: BTreeMap<(usize, usize), (u64, usize)> = BTreeMap::new();
    let slice = |parts: &mut Vec<String>,
                 name: &str,
                 cat: &str,
                 pid: usize,
                 tid: usize,
                 start: u64,
                 end: u64| {
        let mut s = String::from("{\"name\":");
        push_escaped(&mut s, name);
        s.push_str(&format!(
            ",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{:.3},\"dur\":{:.3}}}",
            ts(start),
            ts(end.max(start)) - ts(start)
        ));
        parts.push(s);
    };

    for (pod, e) in events {
        let p = *pod;
        match e {
            TraceEvent::Arrived { id, cycle, .. } => {
                parts.push(format!(
                    r#"{{"name":"req {id}","cat":"request","ph":"b","id":{id},"pid":{p},"ts":{:.3}}}"#,
                    ts(*cycle)
                ));
            }
            TraceEvent::Enqueued { id, client, cycle } => {
                open_queue.insert((p, *id), (*cycle, *client));
            }
            TraceEvent::Dispatched {
                seq,
                ids,
                array,
                arrays,
                cycle,
            } => {
                open_exec.insert((p, *seq), (*cycle, *array, ids.len()));
                for id in ids {
                    if let Some((start, client)) = open_queue.remove(&(p, *id)) {
                        slice(
                            &mut parts,
                            &format!("queue req {id}"),
                            "queue",
                            p,
                            CLIENT_TID_BASE + client,
                            start,
                            *cycle,
                        );
                    }
                }
                let _ = arrays;
            }
            TraceEvent::BatchJoined { seq, id, cycle } => {
                if let Some((start, client)) = open_queue.remove(&(p, *id)) {
                    slice(
                        &mut parts,
                        &format!("queue req {id}"),
                        "queue",
                        p,
                        CLIENT_TID_BASE + client,
                        start,
                        *cycle,
                    );
                }
                let _ = seq;
            }
            TraceEvent::CheckpointDrained { seq, cycle } => {
                if let Some((start, array, batch)) = open_exec.remove(&(p, *seq)) {
                    slice(
                        &mut parts,
                        &format!("job {seq} x{batch}"),
                        "exec",
                        p,
                        array,
                        start,
                        *cycle,
                    );
                }
            }
            TraceEvent::Resumed { seq, array, cycle } => {
                open_exec.insert((p, *seq), (*cycle, *array, 1));
            }
            TraceEvent::Preempted { seq, cycle } => {
                if let Some(&(_, array, _)) = open_exec.get(&(p, *seq)) {
                    parts.push(format!(
                        r#"{{"name":"preempt job {seq}","cat":"preempt","ph":"i","s":"t","pid":{p},"tid":{array},"ts":{:.3}}}"#,
                        ts(*cycle)
                    ));
                }
            }
            TraceEvent::ShardRefused { seq, cycle } => {
                parts.push(format!(
                    r#"{{"name":"shard refused (job {seq})","cat":"shard","ph":"i","s":"p","pid":{p},"ts":{:.3}}}"#,
                    ts(*cycle)
                ));
            }
            TraceEvent::Retimed { jobs, cycle } => {
                parts.push(format!(
                    r#"{{"name":"retimed jobs","cat":"retime","ph":"C","pid":{p},"ts":{:.3},"args":{{"jobs":{jobs}}}}}"#,
                    ts(*cycle)
                ));
            }
            TraceEvent::BandwidthEpoch {
                total_weight,
                cycle,
            } => {
                parts.push(format!(
                    r#"{{"name":"bandwidth epoch","cat":"retime","ph":"C","pid":{p},"ts":{:.3},"args":{{"weight":{total_weight}}}}}"#,
                    ts(*cycle)
                ));
            }
            TraceEvent::Rerouted {
                id,
                from_pod,
                to_pod,
                cycle,
            } => {
                parts.push(format!(
                    r#"{{"name":"reroute req {id}: pod {from_pod} -> pod {to_pod}","cat":"cluster","ph":"i","s":"g","pid":{from_pod},"ts":{:.3}}}"#,
                    ts(*cycle)
                ));
            }
            TraceEvent::PodFailed { pod, cycle } => {
                parts.push(format!(
                    r#"{{"name":"pod {pod} failed","cat":"cluster","ph":"i","s":"g","pid":{pod},"ts":{:.3}}}"#,
                    ts(*cycle)
                ));
            }
            TraceEvent::ScaleUp {
                pod,
                ready_at,
                cycle,
            } => {
                parts.push(format!(
                    r#"{{"name":"scale up pod {pod} (ready {ready_at})","cat":"cluster","ph":"i","s":"g","pid":{pod},"ts":{:.3}}}"#,
                    ts(*cycle)
                ));
            }
            TraceEvent::ScaleDown { pod, cycle } => {
                parts.push(format!(
                    r#"{{"name":"scale down pod {pod}","cat":"cluster","ph":"i","s":"g","pid":{pod},"ts":{:.3}}}"#,
                    ts(*cycle)
                ));
            }
            TraceEvent::Completed(o) | TraceEvent::DeadlineMissed(o) => {
                if let Some((start, array, batch)) = open_exec.remove(&(p, o.seq)) {
                    slice(
                        &mut parts,
                        &format!("job {} x{batch}", o.seq),
                        "exec",
                        p,
                        array,
                        start,
                        o.completion,
                    );
                }
                parts.push(format!(
                    r#"{{"name":"req {}","cat":"request","ph":"e","id":{},"pid":{p},"ts":{:.3}}}"#,
                    o.id,
                    o.id,
                    ts(o.completion)
                ));
            }
            TraceEvent::Shed {
                id, cycle, reason, ..
            } => {
                parts.push(format!(
                    r#"{{"name":"shed req {id} ({})","cat":"admission","ph":"i","s":"p","pid":{p},"ts":{:.3}}}"#,
                    reason.name(),
                    ts(*cycle)
                ));
                parts.push(format!(
                    r#"{{"name":"req {id}","cat":"request","ph":"e","id":{id},"pid":{p},"ts":{:.3}}}"#,
                    ts(*cycle)
                ));
            }
            _ => {}
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    out.push_str(&parts.join(","));
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: usize, seq: usize) -> RequestOutcome {
        RequestOutcome {
            id,
            client: 0,
            class: RequestClass::Decode,
            seq,
            array: 0,
            arrival: 0,
            dispatch: 10,
            completion: 30,
            deadline: 100,
            batch_size: 1,
            sharded_over: 1,
            stall_cycles: 0,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        let mut s = RecordingSink::default();
        assert!(TraceSink::enabled(&s));
        s.record(
            0,
            TraceEvent::Arrived {
                id: 0,
                client: 0,
                class: RequestClass::Decode,
                cycle: 5,
            },
        );
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.events[0].1.cycle(), 5);
        assert_eq!(s.events[0].1.name(), "arrived");
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1034);
        assert_eq!(h.buckets[0], 1); // the zero
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[11], 1); // 1024
    }

    #[test]
    fn conservation_accepts_balanced_stream() {
        let events = vec![
            (
                0,
                TraceEvent::Arrived {
                    id: 0,
                    client: 0,
                    class: RequestClass::Decode,
                    cycle: 0,
                },
            ),
            (
                0,
                TraceEvent::Enqueued {
                    id: 0,
                    client: 0,
                    cycle: 0,
                },
            ),
            (
                0,
                TraceEvent::Dispatched {
                    seq: 0,
                    ids: vec![0],
                    array: 0,
                    arrays: 1,
                    cycle: 10,
                },
            ),
            (0, TraceEvent::Completed(outcome(0, 0))),
        ];
        check_conservation(&events).unwrap();
    }

    #[test]
    fn conservation_rejects_lost_request() {
        let events = vec![(
            0,
            TraceEvent::Arrived {
                id: 7,
                client: 0,
                class: RequestClass::Decode,
                cycle: 0,
            },
        )];
        let err = check_conservation(&events).unwrap_err();
        assert!(err.contains("request 7"), "{err}");
    }

    #[test]
    fn conservation_rejects_unbalanced_preemption() {
        let events = vec![(0, TraceEvent::Preempted { seq: 3, cycle: 9 })];
        let err = check_conservation(&events).unwrap_err();
        assert!(err.contains("job 3"), "{err}");
    }

    #[test]
    fn aggregator_tracks_depth_and_phases() {
        let mut agg = AggregatingSink::default();
        agg.record(
            0,
            TraceEvent::Enqueued {
                id: 0,
                client: 0,
                cycle: 0,
            },
        );
        agg.record(
            0,
            TraceEvent::Enqueued {
                id: 1,
                client: 1,
                cycle: 2,
            },
        );
        assert_eq!(agg.max_queue_depth(), 2);
        agg.record(
            0,
            TraceEvent::Dispatched {
                seq: 0,
                ids: vec![0, 1],
                array: 0,
                arrays: 1,
                cycle: 10,
            },
        );
        assert_eq!(*agg.queue_depth.last().unwrap(), (10, 0));
        assert_eq!(*agg.busy_arrays.last().unwrap(), (10, 1));
        agg.record(0, TraceEvent::Completed(outcome(0, 0)));
        agg.record(0, TraceEvent::Completed(outcome(1, 0)));
        // The first terminal frees the job's array; the second is a
        // batch peer at the same cycle.
        assert_eq!(*agg.busy_arrays.last().unwrap(), (30, 0));
        assert_eq!(agg.queue_hist.count, 2);
        assert_eq!(agg.service_hist.count, 2);
        for o in &agg.outcomes {
            assert_eq!(o.queue_cycles() + o.service_cycles(), o.total_cycles());
        }
    }

    #[test]
    fn chrome_export_emits_tracks_and_spans() {
        let mut rec = RecordingSink::default();
        rec.record(
            0,
            TraceEvent::Arrived {
                id: 0,
                client: 2,
                class: RequestClass::Decode,
                cycle: 0,
            },
        );
        rec.record(
            0,
            TraceEvent::Enqueued {
                id: 0,
                client: 2,
                cycle: 0,
            },
        );
        rec.record(
            0,
            TraceEvent::Dispatched {
                seq: 0,
                ids: vec![0],
                array: 1,
                arrays: 1,
                cycle: 10,
            },
        );
        rec.record(
            0,
            TraceEvent::Completed(RequestOutcome {
                client: 2,
                array: 1,
                ..outcome(0, 0)
            }),
        );
        let json = chrome_trace_json(&rec.events, 500.0);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("pod 0"));
        assert!(json.contains("array 1"));
        assert!(json.contains("client 2"));
        assert!(json.contains("\"ph\":\"b\""));
        assert!(json.contains("\"ph\":\"e\""));
        assert!(json.contains("\"ph\":\"X\""));
    }
}

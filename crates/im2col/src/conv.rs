//! Convolution layer descriptions and their GEMM projections.

use axon_core::GemmShape;
use std::fmt;

/// Geometry of one 2-D convolution layer.
///
/// # Examples
///
/// ```
/// use axon_im2col::ConvLayer;
///
/// // The paper's Fig. 7 example: 3x3 filter over a 6x6 ifmap.
/// let layer = ConvLayer::new(1, 1, 6, 6, 3, 1, 0);
/// assert_eq!(layer.out_h(), 4);
/// assert_eq!(layer.out_w(), 4);
/// assert_eq!(layer.num_windows(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvLayer {
    /// Input channels (`C_in`).
    pub in_channels: usize,
    /// Output channels / number of filters (`C_out`).
    pub out_channels: usize,
    /// IFMAP height.
    pub ifmap_h: usize,
    /// IFMAP width.
    pub ifmap_w: usize,
    /// Square kernel side (`n` in the paper).
    pub kernel: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl ConvLayer {
    /// Creates a layer description.
    ///
    /// # Panics
    ///
    /// Panics if any of channels, spatial extents, kernel or stride is
    /// zero, or if the kernel does not fit the padded input.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        ifmap_h: usize,
        ifmap_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0,
            "channels must be non-zero"
        );
        assert!(ifmap_h > 0 && ifmap_w > 0, "ifmap extents must be non-zero");
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be non-zero"
        );
        assert!(
            ifmap_h + 2 * padding >= kernel && ifmap_w + 2 * padding >= kernel,
            "kernel larger than padded input"
        );
        Self {
            in_channels,
            out_channels,
            ifmap_h,
            ifmap_w,
            kernel,
            stride,
            padding,
        }
    }

    /// Output height: `(H + 2p - n) / s + 1`.
    pub fn out_h(&self) -> usize {
        (self.ifmap_h + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.ifmap_w + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Number of convolution windows (= OFMAP pixels per channel).
    pub fn num_windows(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Length of a flattened window: `C_in * n^2` — the GEMM `K`.
    pub fn window_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// GEMM projection used to run the layer on a GEMM accelerator:
    /// `M = C_out`, `K = C_in * n^2`, `N = OH * OW` (as in the paper's
    /// Table 3 conv entries, e.g. ResNet50_0 = 64 x 147 x 62500).
    pub fn gemm_shape(&self) -> GemmShape {
        GemmShape::new(self.out_channels, self.window_len(), self.num_windows())
    }

    /// Total MACs of the layer.
    pub fn macs(&self) -> usize {
        self.gemm_shape().macs()
    }

    /// Elements of the lowered (im2col) ifmap matrix: `K * N`. This is what
    /// software im2col materializes and streams.
    pub fn lowered_elements(&self) -> usize {
        self.window_len() * self.num_windows()
    }

    /// Unique ifmap elements actually touched by the window sweep
    /// (excluding synthesized zero padding), upper-bounded by `C_in*H*W`.
    pub fn unique_ifmap_elements(&self) -> usize {
        // With stride > kernel some input pixels are skipped entirely.
        let touched = |extent: usize, out: usize| -> usize {
            if self.stride <= self.kernel {
                extent
            } else {
                // Each window covers `kernel` pixels, windows don't overlap.
                (out * self.kernel).min(extent)
            }
        };
        self.in_channels * touched(self.ifmap_h, self.out_h()) * touched(self.ifmap_w, self.out_w())
    }

    /// Filter parameter count: `C_out * C_in * n^2`.
    pub fn filter_elements(&self) -> usize {
        self.out_channels * self.window_len()
    }

    /// OFMAP element count: `C_out * OH * OW`.
    pub fn ofmap_elements(&self) -> usize {
        self.out_channels * self.num_windows()
    }

    /// Duplication factor of software im2col: lowered elements per unique
    /// ifmap element. For the paper's Fig. 7 example this is 2.0
    /// (50% repetition).
    pub fn duplication_factor(&self) -> f64 {
        self.lowered_elements() as f64 / self.unique_ifmap_elements() as f64
    }

    /// `true` if this layer is depthwise when `in_channels == groups`;
    /// here we model DW-conv layers as `C_in = 1` per-channel GEMMs, so a
    /// DW layer is expressed as one `ConvLayer` with `in_channels = 1` and
    /// `out_channels = 1`, repeated per channel (see `axon-workloads`).
    pub fn is_pointwise(&self) -> bool {
        self.kernel == 1
    }
}

impl fmt::Display for ConvLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conv {}x{}x{}x{} k{} s{} p{}",
            self.in_channels,
            self.out_channels,
            self.ifmap_h,
            self.ifmap_w,
            self.kernel,
            self.stride,
            self.padding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig7_example() {
        // 3x3 filter, 6x6 ifmap -> 4x4 ofmap, 16 windows; the 4 windows of
        // one output row contain 18 unique and 18 repeated elements.
        let l = ConvLayer::new(1, 1, 6, 6, 3, 1, 0);
        assert_eq!(l.out_h(), 4);
        assert_eq!(l.num_windows(), 16);
        assert_eq!(l.window_len(), 9);
        // One output row: 4 windows x 9 = 36 elements, 18 unique.
        // Whole layer: duplication factor = 16*9 / 36 = 4.0 (rows overlap
        // vertically too).
        assert_eq!(l.lowered_elements(), 144);
        assert_eq!(l.unique_ifmap_elements(), 36);
        assert!((l.duplication_factor() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn resnet50_first_layer_matches_table3() {
        // ResNet50_0_conv2d in the paper's Table 3: M=64, K=147, N=62500.
        // 7x7 kernel, 3 input channels, stride 2 over a 224x224 image
        // padded to 501x501-equivalent windows... the paper's N = 62500 =
        // 250^2 corresponds to a 224x224 input with padding 3 upsampled;
        // we reproduce the table's numbers with a 505x505 virtual input.
        let l = ConvLayer::new(3, 64, 505, 505, 7, 2, 0);
        assert_eq!(l.gemm_shape(), GemmShape::new(64, 147, 62500));
    }

    #[test]
    fn pointwise_has_no_duplication() {
        let l = ConvLayer::new(64, 128, 56, 56, 1, 1, 0);
        assert!(l.is_pointwise());
        assert!((l.duplication_factor() - 1.0).abs() < 1e-12);
        assert_eq!(l.lowered_elements(), l.unique_ifmap_elements());
    }

    #[test]
    fn strided_conv_duplication_shrinks() {
        let s1 = ConvLayer::new(1, 1, 32, 32, 3, 1, 0);
        let s2 = ConvLayer::new(1, 1, 32, 32, 3, 2, 0);
        assert!(s2.duplication_factor() < s1.duplication_factor());
    }

    #[test]
    fn stride_beyond_kernel_skips_pixels() {
        let l = ConvLayer::new(1, 1, 10, 10, 2, 4, 0);
        // 3 windows per dim covering 2 pixels each = 6 of 10 touched.
        assert_eq!(l.unique_ifmap_elements(), 36);
    }

    #[test]
    fn padding_grows_output() {
        let l = ConvLayer::new(1, 1, 8, 8, 3, 1, 1);
        assert_eq!(l.out_h(), 8);
        assert_eq!(l.out_w(), 8);
    }
}

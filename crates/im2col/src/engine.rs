//! End-to-end convolution execution: lowering, tiled systolic GEMM, and
//! traffic accounting in one call.
//!
//! This is the path a user of the accelerator model actually wants: give
//! it a layer, an ifmap and filters, pick the architecture, and get the
//! OFMAP plus cycles and memory traffic. Functional correctness against
//! direct convolution is asserted in tests and cheap to re-check via
//! [`ConvRun::verify`].

use crate::conv::ConvLayer;
use crate::software::{direct_conv, flatten_filters, im2col};
use crate::tensor::{FilterBank, Tensor3};
use crate::traffic::{layer_traffic, LayerTraffic, TrafficParams};
use axon_core::runtime::Architecture;
use axon_core::ShapeError;
use axon_sim::{simulate_gemm, Matrix, SimConfig, SimStats};

/// Result of running one conv layer on a simulated array.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvRun {
    /// OFMAP as `C_out x (OH*OW)` (matching `flatten * lowered`).
    pub ofmap: Matrix,
    /// Simulator statistics for the GEMM execution.
    pub stats: SimStats,
    /// SRAM-level stream traffic of this layer under both im2col schemes.
    pub traffic: LayerTraffic,
    layer: ConvLayer,
}

impl ConvRun {
    /// The executed layer.
    pub fn layer(&self) -> ConvLayer {
        self.layer
    }

    /// Re-checks the OFMAP against direct convolution.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the operands mismatch the layer (cannot
    /// happen for a `ConvRun` produced by [`run_conv`] with the same
    /// operands).
    pub fn verify(&self, ifmap: &Tensor3, filters: &FilterBank) -> Result<bool, ShapeError> {
        let truth = direct_conv(&self.layer, ifmap, filters)?;
        Ok(self.ofmap == truth)
    }
}

/// Executes a convolution on the configured array via im2col lowering.
///
/// The lowering itself is the *software* scheme (the values delivered to
/// the array are identical under the on-chip scheme — the MUX feeder
/// changes only where they are fetched from, which is what the
/// [`LayerTraffic`] field accounts).
///
/// # Errors
///
/// Returns [`ShapeError`] when the ifmap or filters disagree with the
/// layer geometry.
///
/// # Examples
///
/// ```
/// use axon_core::{ArrayShape, runtime::Architecture};
/// use axon_im2col::{run_conv, ConvLayer, FilterBank, Tensor3};
/// use axon_sim::SimConfig;
///
/// # fn main() -> Result<(), axon_core::ShapeError> {
/// let layer = ConvLayer::new(2, 4, 8, 8, 3, 1, 1);
/// let ifmap = Tensor3::from_fn(2, 8, 8, |c, y, x| (c + y + x) as f32);
/// let filters = FilterBank::from_fn(4, 2, 3, |m, c, y, x| (m + c + y + x) as f32);
/// let cfg = SimConfig::new(ArrayShape::square(8));
/// let run = run_conv(Architecture::Axon, &cfg, &layer, &ifmap, &filters)?;
/// assert!(run.verify(&ifmap, &filters)?);
/// # Ok(())
/// # }
/// ```
pub fn run_conv(
    arch: Architecture,
    cfg: &SimConfig,
    layer: &ConvLayer,
    ifmap: &Tensor3,
    filters: &FilterBank,
) -> Result<ConvRun, ShapeError> {
    let lowered = im2col(layer, ifmap)?;
    let flat = flatten_filters(layer, filters)?;
    let result = simulate_gemm(arch, cfg, &flat, &lowered)?;
    let traffic = layer_traffic(layer, TrafficParams::new(2, cfg.array.diagonal_len()));
    Ok(ConvRun {
        ofmap: result.output,
        stats: result.stats,
        traffic,
        layer: *layer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use axon_core::{ArrayShape, Dataflow};

    fn operands(layer: &ConvLayer) -> (Tensor3, FilterBank) {
        let ifmap = Tensor3::from_fn(
            layer.in_channels,
            layer.ifmap_h,
            layer.ifmap_w,
            |c, y, x| ((c * 11 + y * 5 + x * 3) % 13) as f32 - 6.0,
        );
        let filters = FilterBank::from_fn(
            layer.out_channels,
            layer.in_channels,
            layer.kernel,
            |m, c, y, x| ((m * 3 + c * 7 + y * 2 + x) % 9) as f32 - 4.0,
        );
        (ifmap, filters)
    }

    #[test]
    fn run_conv_verifies_on_both_architectures() {
        let layer = ConvLayer::new(3, 5, 9, 9, 3, 1, 1);
        let (ifmap, filters) = operands(&layer);
        for arch in [Architecture::Conventional, Architecture::Axon] {
            let cfg = SimConfig::new(ArrayShape::square(6));
            let run = run_conv(arch, &cfg, &layer, &ifmap, &filters).unwrap();
            assert!(run.verify(&ifmap, &filters).unwrap(), "{arch}");
            assert_eq!(run.stats.macs_performed, layer.macs());
        }
    }

    #[test]
    fn axon_conv_is_faster() {
        let layer = ConvLayer::new(2, 8, 12, 12, 3, 1, 0);
        let (ifmap, filters) = operands(&layer);
        let cfg = SimConfig::new(ArrayShape::square(8)).with_dataflow(Dataflow::Os);
        let sa = run_conv(Architecture::Conventional, &cfg, &layer, &ifmap, &filters).unwrap();
        let ax = run_conv(Architecture::Axon, &cfg, &layer, &ifmap, &filters).unwrap();
        assert!(ax.stats.cycles < sa.stats.cycles);
        assert_eq!(ax.ofmap, sa.ofmap);
    }

    #[test]
    fn traffic_attached_to_run() {
        let layer = ConvLayer::new(4, 4, 10, 10, 3, 1, 1);
        let (ifmap, filters) = operands(&layer);
        let cfg = SimConfig::new(ArrayShape::square(4));
        let run = run_conv(Architecture::Axon, &cfg, &layer, &ifmap, &filters).unwrap();
        assert!(run.traffic.ifmap_reduction_pct() > 0.0);
        assert_eq!(run.layer(), layer);
    }

    #[test]
    fn geometry_mismatch_propagates() {
        let layer = ConvLayer::new(2, 2, 8, 8, 3, 1, 0);
        let wrong_ifmap = Tensor3::zeros(3, 8, 8);
        let (_, filters) = operands(&layer);
        let cfg = SimConfig::new(ArrayShape::square(4));
        assert!(run_conv(Architecture::Axon, &cfg, &layer, &wrong_ifmap, &filters).is_err());
    }
}

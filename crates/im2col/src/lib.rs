//! # axon-im2col
//!
//! Convolution-lowering substrate for the Axon reproduction: tensors,
//! conv-layer geometry, reference (software) im2col, the Axon on-chip
//! MUX feeder schedule, and memory-traffic models.
//!
//! The paper's second contribution (§3.2) is an im2col implementation
//! that costs a single 2-to-1 MUX per diagonal feeder PE: because Axon's
//! diagonal feed is *unskewed and ordered*, each feeder can take the
//! element it needs from the adjacent feeder's previous cycle for
//! `n - 1` of every `n` cycles, eliminating the duplicated SRAM/DRAM
//! traffic software im2col incurs.
//!
//! ## Example
//!
//! ```
//! use axon_im2col::{access_reduction_pct, ConvLayer};
//!
//! // A ResNet-style 3x3 conv with a 16-wide feeder chain saves >60% of
//! // the ifmap stream (paper Fig. 11).
//! let layer = ConvLayer::new(64, 64, 56, 56, 3, 1, 1);
//! assert!(access_reduction_pct(&layer, 16) > 60.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv;
mod engine;
mod onchip;
mod software;
mod tensor;
mod traffic;

pub use conv::ConvLayer;
pub use engine::{run_conv, ConvRun};
pub use onchip::{
    access_reduction_pct, onchip_ifmap_loads, simulate_feeder_group, software_ifmap_loads, MuxTrace,
};
pub use software::{direct_conv, flatten_filters, im2col};
pub use tensor::{FilterBank, Tensor3};
pub use traffic::{
    layer_dram_traffic, layer_traffic, network_traffic, DramTrafficModel, LayerTraffic,
    OnchipPolicy, TrafficParams,
};

//! Software (reference) im2col lowering and direct-convolution ground
//! truth.
//!
//! This is the baseline the paper's on-chip scheme replaces: the lowered
//! matrix is fully materialized, duplicating every ifmap element that
//! appears in multiple convolution windows.

use crate::conv::ConvLayer;
use crate::tensor::{FilterBank, Tensor3};
use axon_core::ShapeError;
use axon_sim::Matrix;

/// Lowers an IFMAP into the im2col matrix of shape `K x N`
/// (`K = C_in * n^2` window length, `N = OH * OW` windows, one column per
/// window, in row-major output order).
///
/// # Errors
///
/// Returns [`ShapeError::DimensionMismatch`] if `ifmap` does not match the
/// layer geometry.
///
/// # Examples
///
/// ```
/// use axon_im2col::{im2col, ConvLayer, Tensor3};
///
/// # fn main() -> Result<(), axon_core::ShapeError> {
/// let layer = ConvLayer::new(1, 1, 4, 4, 3, 1, 0);
/// let ifmap = Tensor3::from_fn(1, 4, 4, |_, y, x| (y * 4 + x) as f32);
/// let lowered = im2col(&layer, &ifmap)?;
/// assert_eq!(lowered.rows(), 9);
/// assert_eq!(lowered.cols(), 4);
/// # Ok(())
/// # }
/// ```
pub fn im2col(layer: &ConvLayer, ifmap: &Tensor3) -> Result<Matrix, ShapeError> {
    validate_ifmap(layer, ifmap)?;
    let k = layer.window_len();
    let n = layer.num_windows();
    let (oh, ow) = (layer.out_h(), layer.out_w());
    let mut out = Matrix::zeros(k, n);
    for oy in 0..oh {
        for ox in 0..ow {
            let col = oy * ow + ox;
            let mut row = 0usize;
            for c in 0..layer.in_channels {
                for ky in 0..layer.kernel {
                    for kx in 0..layer.kernel {
                        let y = (oy * layer.stride + ky) as isize - layer.padding as isize;
                        let x = (ox * layer.stride + kx) as isize - layer.padding as isize;
                        out[(row, col)] = ifmap.get_padded(c, y, x, layer.padding);
                        row += 1;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Flattens a filter bank into the `M x K` GEMM operand (one filter per
/// row, channel-major then row-major within the kernel — matching the
/// ordering produced by [`im2col`]).
///
/// # Errors
///
/// Returns [`ShapeError::DimensionMismatch`] if the bank does not match
/// the layer geometry.
pub fn flatten_filters(layer: &ConvLayer, filters: &FilterBank) -> Result<Matrix, ShapeError> {
    if filters.count() != layer.out_channels {
        return Err(ShapeError::DimensionMismatch {
            context: "filter count vs out_channels",
            left: filters.count(),
            right: layer.out_channels,
        });
    }
    if filters.channels() != layer.in_channels || filters.kernel() != layer.kernel {
        return Err(ShapeError::DimensionMismatch {
            context: "filter geometry vs layer",
            left: filters.channels() * filters.kernel() * filters.kernel(),
            right: layer.window_len(),
        });
    }
    let m = layer.out_channels;
    let k = layer.window_len();
    Ok(Matrix::from_fn(m, k, |fi, idx| {
        let per_ch = layer.kernel * layer.kernel;
        let c = idx / per_ch;
        let rem = idx % per_ch;
        let ky = rem / layer.kernel;
        let kx = rem % layer.kernel;
        filters.get(fi, c, ky, kx).expect("validated geometry")
    }))
}

/// Direct (non-lowered) convolution, the numerical ground truth. Returns
/// the OFMAP as a `C_out x (OH*OW)` matrix, matching the GEMM output
/// layout `flatten_filters(..) * im2col(..)`.
///
/// # Errors
///
/// Returns [`ShapeError`] if the operands do not match the layer geometry.
pub fn direct_conv(
    layer: &ConvLayer,
    ifmap: &Tensor3,
    filters: &FilterBank,
) -> Result<Matrix, ShapeError> {
    validate_ifmap(layer, ifmap)?;
    let (oh, ow) = (layer.out_h(), layer.out_w());
    let mut out = Matrix::zeros(layer.out_channels, oh * ow);
    for m in 0..layer.out_channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for c in 0..layer.in_channels {
                    for ky in 0..layer.kernel {
                        for kx in 0..layer.kernel {
                            let y = (oy * layer.stride + ky) as isize - layer.padding as isize;
                            let x = (ox * layer.stride + kx) as isize - layer.padding as isize;
                            let iv = ifmap.get_padded(c, y, x, layer.padding);
                            let fv =
                                filters
                                    .get(m, c, ky, kx)
                                    .ok_or(ShapeError::DimensionMismatch {
                                        context: "filter geometry vs layer",
                                        left: filters.count(),
                                        right: layer.out_channels,
                                    })?;
                            acc += iv * fv;
                        }
                    }
                }
                out[(m, oy * ow + ox)] = acc;
            }
        }
    }
    Ok(out)
}

fn validate_ifmap(layer: &ConvLayer, ifmap: &Tensor3) -> Result<(), ShapeError> {
    if ifmap.channels() != layer.in_channels {
        return Err(ShapeError::DimensionMismatch {
            context: "ifmap channels vs layer",
            left: ifmap.channels(),
            right: layer.in_channels,
        });
    }
    if ifmap.height() != layer.ifmap_h || ifmap.width() != layer.ifmap_w {
        return Err(ShapeError::DimensionMismatch {
            context: "ifmap extents vs layer",
            left: ifmap.height() * ifmap.width(),
            right: layer.ifmap_h * layer.ifmap_w,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_operands(layer: &ConvLayer) -> (Tensor3, FilterBank) {
        let ifmap = Tensor3::from_fn(
            layer.in_channels,
            layer.ifmap_h,
            layer.ifmap_w,
            |c, y, x| ((c * 7 + y * 3 + x * 5) % 11) as f32 - 5.0,
        );
        let filters = FilterBank::from_fn(
            layer.out_channels,
            layer.in_channels,
            layer.kernel,
            |m, c, y, x| ((m + 2 * c + 3 * y + x) % 7) as f32 - 3.0,
        );
        (ifmap, filters)
    }

    #[test]
    fn gemm_of_lowered_equals_direct_conv() {
        for layer in [
            ConvLayer::new(2, 3, 8, 8, 3, 1, 0),
            ConvLayer::new(1, 4, 9, 7, 3, 2, 1),
            ConvLayer::new(3, 2, 6, 6, 1, 1, 0),
            ConvLayer::new(2, 2, 10, 10, 5, 2, 2),
        ] {
            let (ifmap, filters) = test_operands(&layer);
            let lowered = im2col(&layer, &ifmap).unwrap();
            let flat = flatten_filters(&layer, &filters).unwrap();
            let via_gemm = flat.matmul(&lowered);
            let direct = direct_conv(&layer, &ifmap, &filters).unwrap();
            assert_eq!(via_gemm, direct, "{layer}");
        }
    }

    #[test]
    fn lowered_shape_matches_gemm_projection() {
        let layer = ConvLayer::new(3, 8, 12, 12, 3, 1, 1);
        let (ifmap, _) = test_operands(&layer);
        let lowered = im2col(&layer, &ifmap).unwrap();
        let g = layer.gemm_shape();
        assert_eq!(lowered.rows(), g.k);
        assert_eq!(lowered.cols(), g.n);
    }

    #[test]
    fn mismatched_ifmap_rejected() {
        let layer = ConvLayer::new(2, 2, 8, 8, 3, 1, 0);
        let wrong = Tensor3::zeros(3, 8, 8);
        assert!(im2col(&layer, &wrong).is_err());
        let wrong = Tensor3::zeros(2, 7, 8);
        assert!(im2col(&layer, &wrong).is_err());
    }

    #[test]
    fn mismatched_filters_rejected() {
        let layer = ConvLayer::new(2, 2, 8, 8, 3, 1, 0);
        let wrong = FilterBank::zeros(3, 2, 3);
        assert!(flatten_filters(&layer, &wrong).is_err());
        let wrong = FilterBank::zeros(2, 2, 5);
        assert!(flatten_filters(&layer, &wrong).is_err());
    }

    #[test]
    fn padding_contributes_zeros() {
        let layer = ConvLayer::new(1, 1, 3, 3, 3, 1, 1);
        let ifmap = Tensor3::from_fn(1, 3, 3, |_, _, _| 1.0);
        let lowered = im2col(&layer, &ifmap).unwrap();
        // Corner window (0,0): only 4 of 9 taps fall inside the image.
        let col0_sum: f32 = (0..9).map(|r| lowered[(r, 0)]).sum();
        assert_eq!(col0_sum, 4.0);
    }
}

//! Axon's on-chip im2col: the 2-to-1 MUX feeder schedule (paper §3.2,
//! Fig. 3b).
//!
//! Conv windows are streamed to the diagonal feeder PEs *in reverse*
//! (rightmost element of each flattened window first). Because a window at
//! output column `x+1` is the window at `x` shifted by the stride, feeder
//! `i`'s element at stream position `p` equals feeder `i-1`'s element at
//! position `p-1` (stride 1) — except at kernel-row boundaries, which occur
//! once every `n` positions. A single 2-to-1 MUX per feeder therefore
//! suffices: its control is `0` (load from SRAM) for 1 cycle and `1` (take
//! the adjacent diagonal PE's value) for the other `n - 1` cycles.
//!
//! The module provides both a cycle-level schedule simulation (verified
//! against the lowered matrix columns) and the closed-form SRAM load
//! count; tests assert they agree.

use crate::conv::ConvLayer;
use crate::software::im2col;
use crate::tensor::Tensor3;
use axon_core::ShapeError;
use axon_sim::Matrix;

/// Outcome of simulating the MUX feeder chain for one group of windows.
#[derive(Debug, Clone, PartialEq)]
pub struct MuxTrace {
    /// Elements fetched from the IFMAP SRAM buffer.
    pub loads_from_sram: usize,
    /// Elements taken from the adjacent diagonal PE via the MUX.
    pub loads_from_neighbor: usize,
    /// Per-cycle, per-feeder control bits (`true` = take from neighbor).
    /// `controls[cycle][feeder]`.
    pub controls: Vec<Vec<bool>>,
}

impl MuxTrace {
    /// Total elements delivered to the array.
    pub fn total_delivered(&self) -> usize {
        self.loads_from_sram + self.loads_from_neighbor
    }

    /// Fraction of deliveries that avoided an SRAM access.
    pub fn reuse_fraction(&self) -> f64 {
        let total = self.total_delivered();
        if total == 0 {
            0.0
        } else {
            self.loads_from_neighbor as f64 / total as f64
        }
    }
}

/// Simulates the feeder chain for `group` consecutive windows of one OFMAP
/// row starting at output coordinates `(oy, ox0)`.
///
/// Returns the streams actually delivered to the feeders (one row per
/// window, in *forward* flattened order, so they can be compared to the
/// lowered matrix columns) together with the [`MuxTrace`].
///
/// # Errors
///
/// Returns [`ShapeError::DimensionMismatch`] if the layer stride is not 1
/// (the single-register MUX chain only captures stride-1 reuse; the
/// closed-form [`onchip_ifmap_loads`] generalizes the traffic accounting),
/// if the group exceeds the OFMAP row, or if the ifmap mismatches the
/// layer.
pub fn simulate_feeder_group(
    layer: &ConvLayer,
    ifmap: &Tensor3,
    oy: usize,
    ox0: usize,
    group: usize,
) -> Result<(Matrix, MuxTrace), ShapeError> {
    if layer.stride != 1 {
        return Err(ShapeError::DimensionMismatch {
            context: "mux chain requires stride",
            left: layer.stride,
            right: 1,
        });
    }
    if ox0 + group > layer.out_w() || group == 0 {
        return Err(ShapeError::DimensionMismatch {
            context: "window group vs ofmap row",
            left: ox0 + group,
            right: layer.out_w(),
        });
    }
    let lowered = im2col(layer, ifmap)?;
    let len = layer.window_len();
    let n = layer.kernel;
    let ow = layer.out_w();

    // delivered[(i, p_fwd)] in forward order; feeders operate in reverse.
    let mut delivered = Matrix::zeros(group, len);
    let mut trace = MuxTrace {
        loads_from_sram: 0,
        loads_from_neighbor: 0,
        controls: Vec::with_capacity(len),
    };
    // prev[i] = value feeder i held in the previous cycle.
    let mut prev: Vec<f32> = vec![0.0; group];

    for p in 0..len {
        let mut cycle_controls = Vec::with_capacity(group);
        let mut cur = vec![0.0f32; group];
        for i in 0..group {
            let col = oy * ow + ox0 + i;
            let from_neighbor = i > 0 && p % n != 0;
            let v = if from_neighbor {
                trace.loads_from_neighbor += 1;
                prev[i - 1]
            } else {
                trace.loads_from_sram += 1;
                lowered[(len - 1 - p, col)]
            };
            cur[i] = v;
            delivered[(i, len - 1 - p)] = v;
            cycle_controls.push(from_neighbor);
        }
        trace.controls.push(cycle_controls);
        prev = cur;
    }
    Ok((delivered, trace))
}

/// Closed-form SRAM ifmap loads for a whole layer using the on-chip
/// feeder with `group_size` diagonal feeders (= the array's diagonal
/// length).
///
/// Per group of `g` windows the first feeder streams the full window
/// (`L = C_in * n^2` elements) while the other `g - 1` feeders load only
/// the elements the MUX cannot supply: `s` new elements per `n`-cycle
/// period for stride `s < n` (a stride-`s` chain), or everything when
/// `s >= n` (no overlap to reuse). Chains break at OFMAP row boundaries
/// and at tile-group boundaries.
///
/// # Examples
///
/// ```
/// use axon_im2col::{onchip_ifmap_loads, ConvLayer};
///
/// // Paper Fig. 7 shape: one OFMAP row of 4 windows, 3x3 kernel:
/// // 9 + 3*(9/3) = 18 loads for 36 delivered elements (50% saved).
/// let layer = ConvLayer::new(1, 1, 6, 6, 3, 1, 0);
/// assert_eq!(onchip_ifmap_loads(&layer, 4), 4 * 18);
/// ```
pub fn onchip_ifmap_loads(layer: &ConvLayer, group_size: usize) -> usize {
    let len = layer.window_len();
    let n = layer.kernel;
    let s = layer.stride;
    let (oh, ow) = (layer.out_h(), layer.out_w());
    let group_size = group_size.max(1);

    if s >= n {
        // No horizontal overlap between adjacent windows.
        return oh * ow * len;
    }
    // Follower feeders load s elements per n-cycle period.
    let follower_loads = len * s / n;
    let full_groups = ow / group_size;
    let rem = ow % group_size;
    let mut per_row = full_groups * (len + (group_size - 1) * follower_loads);
    if rem > 0 {
        per_row += len + (rem - 1) * follower_loads;
    }
    oh * per_row
}

/// Software-im2col ifmap loads: every element of the lowered matrix is
/// read once, `K * N` in total.
pub fn software_ifmap_loads(layer: &ConvLayer) -> usize {
    layer.lowered_elements()
}

/// Fractional memory-access reduction of the on-chip scheme over software
/// im2col for the ifmap stream, in percent (the quantity of the paper's
/// Fig. 11).
pub fn access_reduction_pct(layer: &ConvLayer, group_size: usize) -> f64 {
    let sw = software_ifmap_loads(layer) as f64;
    let hw = onchip_ifmap_loads(layer, group_size) as f64;
    100.0 * (1.0 - hw / sw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ifmap_for(layer: &ConvLayer) -> Tensor3 {
        Tensor3::from_fn(
            layer.in_channels,
            layer.ifmap_h,
            layer.ifmap_w,
            |c, y, x| (c * 1000 + y * 10 + x) as f32,
        )
    }

    #[test]
    fn feeder_chain_delivers_exact_windows() {
        let layer = ConvLayer::new(2, 1, 6, 6, 3, 1, 0);
        let ifmap = ifmap_for(&layer);
        let lowered = im2col(&layer, &ifmap).unwrap();
        let (delivered, _) = simulate_feeder_group(&layer, &ifmap, 1, 0, 4).unwrap();
        for i in 0..4 {
            for p in 0..layer.window_len() {
                assert_eq!(
                    delivered[(i, p)],
                    lowered[(p, layer.out_w() + i)],
                    "window {i} element {p}"
                );
            }
        }
    }

    #[test]
    fn paper_fig7_load_count() {
        // 4 windows of the first OFMAP row: 36 elements delivered with
        // only 18 SRAM loads (the 18 unique elements; 50% repetition).
        let layer = ConvLayer::new(1, 1, 6, 6, 3, 1, 0);
        let ifmap = ifmap_for(&layer);
        let (_, trace) = simulate_feeder_group(&layer, &ifmap, 0, 0, 4).unwrap();
        assert_eq!(trace.total_delivered(), 36);
        assert_eq!(trace.loads_from_sram, 18);
        assert_eq!(trace.loads_from_neighbor, 18);
        assert!((trace.reuse_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mux_control_pattern_is_1_in_n() {
        let layer = ConvLayer::new(1, 1, 8, 8, 3, 1, 0);
        let ifmap = ifmap_for(&layer);
        let (_, trace) = simulate_feeder_group(&layer, &ifmap, 0, 0, 3).unwrap();
        for (p, cycle) in trace.controls.iter().enumerate() {
            // Feeder 0 always loads from SRAM.
            assert!(!cycle[0]);
            for &ctl in &cycle[1..] {
                assert_eq!(ctl, p % 3 != 0, "cycle {p}");
            }
        }
    }

    #[test]
    fn closed_form_matches_schedule_simulation() {
        for (layer, group) in [
            (ConvLayer::new(1, 1, 6, 6, 3, 1, 0), 4usize),
            (ConvLayer::new(3, 1, 9, 9, 3, 1, 0), 7),
            (ConvLayer::new(2, 1, 12, 12, 5, 1, 0), 8),
        ] {
            let ifmap = ifmap_for(&layer);
            // Sum schedule loads over all rows/groups of the layer.
            let mut sim_loads = 0usize;
            let ow = layer.out_w();
            for oy in 0..layer.out_h() {
                let mut ox = 0;
                while ox < ow {
                    let g = group.min(ow - ox);
                    let (_, trace) = simulate_feeder_group(&layer, &ifmap, oy, ox, g).unwrap();
                    sim_loads += trace.loads_from_sram;
                    ox += g;
                }
            }
            assert_eq!(sim_loads, onchip_ifmap_loads(&layer, group), "{layer}");
        }
    }

    #[test]
    fn reduction_exceeds_60pct_for_typical_shapes() {
        // Paper Fig. 11: >60% for SOTA conv shapes with a 16-wide feeder.
        for layer in [
            ConvLayer::new(64, 64, 56, 56, 3, 1, 1),
            ConvLayer::new(128, 128, 28, 28, 3, 1, 1),
            ConvLayer::new(32, 64, 112, 112, 5, 1, 2),
        ] {
            let red = access_reduction_pct(&layer, 16);
            assert!(red > 60.0, "{layer}: {red}%");
        }
    }

    #[test]
    fn pointwise_conv_has_no_reuse() {
        let layer = ConvLayer::new(16, 16, 28, 28, 1, 1, 0);
        assert_eq!(onchip_ifmap_loads(&layer, 16), software_ifmap_loads(&layer));
        assert_eq!(access_reduction_pct(&layer, 16), 0.0);
    }

    #[test]
    fn stride_at_or_above_kernel_disables_reuse() {
        let layer = ConvLayer::new(4, 4, 16, 16, 2, 2, 0);
        assert_eq!(onchip_ifmap_loads(&layer, 8), software_ifmap_loads(&layer));
    }

    #[test]
    fn non_unit_stride_rejected_by_chain_sim() {
        let layer = ConvLayer::new(1, 1, 8, 8, 3, 2, 0);
        let ifmap = ifmap_for(&layer);
        assert!(simulate_feeder_group(&layer, &ifmap, 0, 0, 2).is_err());
    }

    #[test]
    fn oversized_group_rejected() {
        let layer = ConvLayer::new(1, 1, 6, 6, 3, 1, 0);
        let ifmap = ifmap_for(&layer);
        assert!(simulate_feeder_group(&layer, &ifmap, 0, 2, 3).is_err());
        assert!(simulate_feeder_group(&layer, &ifmap, 0, 0, 0).is_err());
    }
}

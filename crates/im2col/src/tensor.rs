//! Minimal CHW tensor types for the convolution substrate.

use axon_core::ShapeError;
use std::fmt;

/// A dense 3-D tensor in channel-major (CHW) layout: the input feature map
/// (IFMAP) of a convolution.
///
/// # Examples
///
/// ```
/// use axon_im2col::Tensor3;
///
/// let t = Tensor3::from_fn(2, 3, 3, |c, y, x| (c * 9 + y * 3 + x) as f32);
/// assert_eq!(t.get(1, 2, 2), Some(17.0));
/// assert_eq!(t.get_padded(0, -1, 0, 1), 0.0); // zero padding
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor3 {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<f32>,
}

impl Tensor3 {
    /// Creates a zero-filled tensor.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "tensor dimensions must be non-zero"
        );
        Self {
            channels,
            height,
            width,
            data: vec![0.0; channels * height * width],
        }
    }

    /// Creates a tensor by evaluating `f(channel, y, x)` per element.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn from_fn<F: FnMut(usize, usize, usize) -> f32>(
        channels: usize,
        height: usize,
        width: usize,
        mut f: F,
    ) -> Self {
        let mut t = Self::zeros(channels, height, width);
        for c in 0..channels {
            for y in 0..height {
                for x in 0..width {
                    let i = t.index(c, y, x);
                    t.data[i] = f(c, y, x);
                }
            }
        }
        t
    }

    /// Creates a tensor from a CHW-ordered vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when dimensions are zero or the data length
    /// disagrees with the shape.
    pub fn from_vec(
        channels: usize,
        height: usize,
        width: usize,
        data: Vec<f32>,
    ) -> Result<Self, ShapeError> {
        if channels == 0 {
            return Err(ShapeError::ZeroDimension {
                dimension: "channels",
            });
        }
        if height == 0 {
            return Err(ShapeError::ZeroDimension {
                dimension: "height",
            });
        }
        if width == 0 {
            return Err(ShapeError::ZeroDimension { dimension: "width" });
        }
        if data.len() != channels * height * width {
            return Err(ShapeError::DimensionMismatch {
                context: "data length vs C*H*W",
                left: data.len(),
                right: channels * height * width,
            });
        }
        Ok(Self {
            channels,
            height,
            width,
            data,
        })
    }

    fn index(&self, c: usize, y: usize, x: usize) -> usize {
        (c * self.height + y) * self.width + x
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Spatial height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Spatial width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor holds no elements (never, by construction,
    /// but provided for API completeness alongside [`Tensor3::len`]).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bounds-checked element access.
    pub fn get(&self, c: usize, y: usize, x: usize) -> Option<f32> {
        if c < self.channels && y < self.height && x < self.width {
            Some(self.data[self.index(c, y, x)])
        } else {
            None
        }
    }

    /// Element access with implicit zero padding: out-of-bounds spatial
    /// coordinates (including negative ones) read as `0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range — padding applies to the spatial
    /// dimensions only.
    pub fn get_padded(&self, c: usize, y: isize, x: isize, _pad: usize) -> f32 {
        assert!(c < self.channels, "channel {c} out of range");
        if y < 0 || x < 0 || y as usize >= self.height || x as usize >= self.width {
            0.0
        } else {
            self.data[self.index(c, y as usize, x as usize)]
        }
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        assert!(
            c < self.channels && y < self.height && x < self.width,
            "index ({c},{y},{x}) out of bounds"
        );
        let i = self.index(c, y, x);
        self.data[i] = v;
    }
}

impl fmt::Display for Tensor3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor3 {}x{}x{} (CHW)",
            self.channels, self.height, self.width
        )
    }
}

/// A bank of convolution filters in `(count, channels, k, k)` layout.
///
/// # Examples
///
/// ```
/// use axon_im2col::FilterBank;
///
/// let f = FilterBank::from_fn(4, 2, 3, |m, c, y, x| (m + c + y + x) as f32);
/// assert_eq!(f.count(), 4);
/// assert_eq!(f.get(3, 1, 2, 2), Some(8.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FilterBank {
    count: usize,
    channels: usize,
    kernel: usize,
    data: Vec<f32>,
}

impl FilterBank {
    /// Creates a zero-filled filter bank of `count` filters, each
    /// `channels x kernel x kernel`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(count: usize, channels: usize, kernel: usize) -> Self {
        assert!(
            count > 0 && channels > 0 && kernel > 0,
            "filter dimensions must be non-zero"
        );
        Self {
            count,
            channels,
            kernel,
            data: vec![0.0; count * channels * kernel * kernel],
        }
    }

    /// Creates a filter bank by evaluating `f(filter, channel, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn from_fn<F: FnMut(usize, usize, usize, usize) -> f32>(
        count: usize,
        channels: usize,
        kernel: usize,
        mut f: F,
    ) -> Self {
        let mut fb = Self::zeros(count, channels, kernel);
        for m in 0..count {
            for c in 0..channels {
                for y in 0..kernel {
                    for x in 0..kernel {
                        let i = fb.index(m, c, y, x);
                        fb.data[i] = f(m, c, y, x);
                    }
                }
            }
        }
        fb
    }

    fn index(&self, m: usize, c: usize, y: usize, x: usize) -> usize {
        ((m * self.channels + c) * self.kernel + y) * self.kernel + x
    }

    /// Number of filters (output channels).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Channels per filter.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Bounds-checked element access.
    pub fn get(&self, m: usize, c: usize, y: usize, x: usize) -> Option<f32> {
        if m < self.count && c < self.channels && y < self.kernel && x < self.kernel {
            Some(self.data[self.index(m, c, y, x)])
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_layout_is_chw() {
        let t = Tensor3::from_fn(2, 2, 2, |c, y, x| (c * 100 + y * 10 + x) as f32);
        assert_eq!(t.get(1, 1, 0), Some(110.0));
        assert_eq!(t.get(2, 0, 0), None);
        assert_eq!(t.len(), 8);
        assert!(!t.is_empty());
    }

    #[test]
    fn padded_access_returns_zero_outside() {
        let t = Tensor3::from_fn(1, 2, 2, |_, y, x| (y * 2 + x + 1) as f32);
        assert_eq!(t.get_padded(0, -1, -1, 1), 0.0);
        assert_eq!(t.get_padded(0, 2, 0, 1), 0.0);
        assert_eq!(t.get_padded(0, 1, 1, 1), 4.0);
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(Tensor3::from_vec(1, 2, 2, vec![0.0; 3]).is_err());
        assert!(Tensor3::from_vec(0, 2, 2, vec![]).is_err());
        assert!(Tensor3::from_vec(1, 2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn filter_bank_access() {
        let f = FilterBank::from_fn(2, 3, 2, |m, c, y, x| {
            (1000 * m + 100 * c + 10 * y + x) as f32
        });
        assert_eq!(f.get(1, 2, 1, 0), Some(1210.0));
        assert_eq!(f.get(2, 0, 0, 0), None);
    }
}

//! Per-layer and per-network memory-traffic accounting for software vs
//! on-chip im2col (paper Fig. 11 and the §5.2.1 energy analysis).
//!
//! The model charges one off-chip transfer per element delivered to the
//! array that the on-chip buffers cannot supply:
//!
//! * **software im2col** — the lowered matrix is materialized and
//!   streamed: `K * N` ifmap elements, plus filters and the OFMAP;
//! * **on-chip im2col** — only the MUX chain's SRAM loads are fetched
//!   (see [`crate::onchip_ifmap_loads`]), plus the same filters/OFMAP.
//!
//! Both sides therefore share the filter and OFMAP terms; the entire
//! difference is ifmap duplication, exactly the quantity the paper's
//! scheme attacks.

use crate::conv::ConvLayer;
use crate::onchip::{onchip_ifmap_loads, software_ifmap_loads};
use std::fmt;

/// Parameters of the traffic model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficParams {
    /// Bytes per element (2 for the paper's FP16 datapath).
    pub elem_bytes: usize,
    /// Number of diagonal feeder PEs sharing one MUX chain (the array's
    /// diagonal length; 16 for the paper's implemented 16x16 array).
    pub feeder_group: usize,
}

impl Default for TrafficParams {
    fn default() -> Self {
        Self {
            elem_bytes: 2,
            feeder_group: 16,
        }
    }
}

impl TrafficParams {
    /// Creates parameters with explicit values.
    pub fn new(elem_bytes: usize, feeder_group: usize) -> Self {
        Self {
            elem_bytes,
            feeder_group,
        }
    }
}

/// Byte-level traffic of one conv layer under both im2col schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerTraffic {
    /// Ifmap bytes streamed by software im2col (`K * N * elem_bytes`).
    pub software_ifmap_bytes: usize,
    /// Ifmap bytes streamed with the on-chip MUX feeder.
    pub onchip_ifmap_bytes: usize,
    /// Filter bytes (common to both schemes).
    pub filter_bytes: usize,
    /// OFMAP write-back bytes (common to both schemes).
    pub ofmap_bytes: usize,
}

impl LayerTraffic {
    /// Total bytes moved under software im2col.
    pub fn software_total(&self) -> usize {
        self.software_ifmap_bytes + self.filter_bytes + self.ofmap_bytes
    }

    /// Total bytes moved with the on-chip feeder.
    pub fn onchip_total(&self) -> usize {
        self.onchip_ifmap_bytes + self.filter_bytes + self.ofmap_bytes
    }

    /// Total-traffic reduction in percent.
    pub fn reduction_pct(&self) -> f64 {
        100.0 * (1.0 - self.onchip_total() as f64 / self.software_total() as f64)
    }

    /// Ifmap-only reduction in percent (the paper's Fig. 11 metric).
    pub fn ifmap_reduction_pct(&self) -> f64 {
        100.0 * (1.0 - self.onchip_ifmap_bytes as f64 / self.software_ifmap_bytes as f64)
    }

    /// Traffic ratio `software / onchip` (>1 means the on-chip scheme
    /// moves less data).
    pub fn traffic_ratio(&self) -> f64 {
        self.software_total() as f64 / self.onchip_total() as f64
    }
}

impl std::ops::AddAssign for LayerTraffic {
    fn add_assign(&mut self, rhs: Self) {
        self.software_ifmap_bytes += rhs.software_ifmap_bytes;
        self.onchip_ifmap_bytes += rhs.onchip_ifmap_bytes;
        self.filter_bytes += rhs.filter_bytes;
        self.ofmap_bytes += rhs.ofmap_bytes;
    }
}

impl fmt::Display for LayerTraffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sw {:.1} MB -> hw {:.1} MB ({:.1}% less)",
            self.software_total() as f64 / 1e6,
            self.onchip_total() as f64 / 1e6,
            self.reduction_pct()
        )
    }
}

/// Computes the traffic of one layer.
///
/// # Examples
///
/// ```
/// use axon_im2col::{layer_traffic, ConvLayer, TrafficParams};
///
/// let layer = ConvLayer::new(64, 64, 56, 56, 3, 1, 1);
/// let t = layer_traffic(&layer, TrafficParams::default());
/// assert!(t.ifmap_reduction_pct() > 60.0);
/// ```
pub fn layer_traffic(layer: &ConvLayer, params: TrafficParams) -> LayerTraffic {
    LayerTraffic {
        software_ifmap_bytes: software_ifmap_loads(layer) * params.elem_bytes,
        onchip_ifmap_bytes: onchip_ifmap_loads(layer, params.feeder_group) * params.elem_bytes,
        filter_bytes: layer.filter_elements() * params.elem_bytes,
        ofmap_bytes: layer.ofmap_elements() * params.elem_bytes,
    }
}

/// Sums the traffic of a whole network's conv layers.
pub fn network_traffic<'a, I>(layers: I, params: TrafficParams) -> LayerTraffic
where
    I: IntoIterator<Item = &'a ConvLayer>,
{
    let mut total = LayerTraffic::default();
    for layer in layers {
        total += layer_traffic(layer, params);
    }
    total
}

/// What the Axon feeder fetches from off-chip under the DRAM model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OnchipPolicy {
    /// The MUX chain's SRAM load stream goes to DRAM: `onchip_ifmap_loads`
    /// per tile pass. Mechanistically faithful to the feeder schedule.
    #[default]
    MuxChain,
    /// Only unique ifmap elements are fetched per pass (an idealized
    /// raw-ifmap buffer per pass). Matches the paper's ResNet50 number
    /// almost exactly; see EXPERIMENTS.md.
    UniqueOnly,
}

/// Off-chip (DRAM) traffic model for a conv layer executed with scale-up
/// tiling on an OS-dataflow array (paper §5.2.1).
///
/// The filters occupy `M = C_out` array rows per pass, so the ifmap
/// stream (lowered or on-chip-reconstructed) is re-fetched once per
/// M-tile: `passes = ceil(C_out / array_rows)`. Software im2col streams
/// the full lowered matrix each pass; Axon streams only what the MUX
/// feeder must load. Filters are fetched once; the OFMAP is written once.
///
/// `array_rows = 32` reproduces the paper's absolute megabyte figures
/// (ResNet50: 261.2 -> 153.5 MB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTrafficModel {
    /// Bytes per element (2 = FP16).
    pub elem_bytes: usize,
    /// Array rows determining the M-tile refetch factor.
    pub array_rows: usize,
    /// Feeder-chain length for the MUX reuse model.
    pub feeder_group: usize,
    /// Axon-side fetch policy.
    pub policy: OnchipPolicy,
}

impl Default for DramTrafficModel {
    fn default() -> Self {
        Self {
            elem_bytes: 2,
            array_rows: 32,
            feeder_group: 32,
            policy: OnchipPolicy::MuxChain,
        }
    }
}

/// Computes one layer's DRAM traffic under [`DramTrafficModel`].
///
/// # Examples
///
/// ```
/// use axon_im2col::{layer_dram_traffic, ConvLayer, DramTrafficModel};
///
/// let layer = ConvLayer::new(64, 64, 56, 56, 3, 1, 1);
/// let t = layer_dram_traffic(&layer, DramTrafficModel::default());
/// assert!(t.traffic_ratio() > 1.5);
/// ```
pub fn layer_dram_traffic(layer: &ConvLayer, model: DramTrafficModel) -> LayerTraffic {
    let passes = layer.out_channels.div_ceil(model.array_rows.max(1));
    let onchip_per_pass = match model.policy {
        OnchipPolicy::MuxChain => onchip_ifmap_loads(layer, model.feeder_group),
        OnchipPolicy::UniqueOnly => layer.unique_ifmap_elements(),
    };
    LayerTraffic {
        software_ifmap_bytes: software_ifmap_loads(layer) * passes * model.elem_bytes,
        onchip_ifmap_bytes: onchip_per_pass * passes * model.elem_bytes,
        filter_bytes: layer.filter_elements() * model.elem_bytes,
        ofmap_bytes: layer.ofmap_elements() * model.elem_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointwise_layer_sees_no_reduction() {
        let layer = ConvLayer::new(64, 128, 28, 28, 1, 1, 0);
        let t = layer_traffic(&layer, TrafficParams::default());
        assert_eq!(t.software_ifmap_bytes, t.onchip_ifmap_bytes);
        assert_eq!(t.reduction_pct(), 0.0);
        assert_eq!(t.traffic_ratio(), 1.0);
    }

    #[test]
    fn network_sum_equals_layer_sum() {
        let layers = [
            ConvLayer::new(3, 32, 64, 64, 3, 1, 1),
            ConvLayer::new(32, 64, 32, 32, 3, 1, 1),
            ConvLayer::new(64, 64, 32, 32, 1, 1, 0),
        ];
        let params = TrafficParams::default();
        let total = network_traffic(&layers, params);
        let manual: usize = layers
            .iter()
            .map(|l| layer_traffic(l, params).software_total())
            .sum();
        assert_eq!(total.software_total(), manual);
    }

    #[test]
    fn conv3x3_network_reduction_near_paper_band() {
        // A 3x3-dominated network (YOLO-like) should see its total traffic
        // cut by roughly 2x (paper: 2540 MB -> 1117 MB, 2.27x).
        let layers = [
            ConvLayer::new(32, 64, 208, 208, 3, 2, 1),
            ConvLayer::new(64, 128, 104, 104, 3, 2, 1),
            ConvLayer::new(128, 256, 52, 52, 3, 2, 1),
            ConvLayer::new(128, 256, 52, 52, 3, 1, 1),
        ];
        let t = network_traffic(&layers, TrafficParams::default());
        assert!(t.traffic_ratio() > 1.3, "ratio {}", t.traffic_ratio());
    }

    #[test]
    fn elem_bytes_scales_linearly() {
        let layer = ConvLayer::new(16, 16, 32, 32, 3, 1, 1);
        let fp16 = layer_traffic(&layer, TrafficParams::new(2, 16));
        let fp32 = layer_traffic(&layer, TrafficParams::new(4, 16));
        assert_eq!(fp32.software_total(), 2 * fp16.software_total());
    }
}

//! Minimal offline stand-in for the `proptest` crate.
//!
//! Covers the subset used by this workspace: the [`proptest!`] macro with
//! `name in <integer range>` bindings, `ProptestConfig::with_cases`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Sampling is
//! driven by a deterministic xorshift RNG seeded from the test name, so runs
//! are reproducible; there is no shrinking — failures panic with the inputs
//! already interpolated by the assertion message.

/// Per-test configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic xorshift64* RNG. Seeded from the test name so each property
/// sees a stable stream independent of execution order.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from an arbitrary string (the test name).
    pub fn new(seed: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in seed.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// A source of random values. Implemented for integer ranges.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Declare property tests. Each `fn name(arg in strategy, ...)` item becomes a
/// `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Like `assert!`, inside a property.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!`, inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Expands to `continue`, so it must appear directly inside the property body
/// (not in a nested loop) — which is how this workspace uses it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn samples_stay_in_range(x in 3usize..17, y in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new("seed");
        let mut b = TestRng::new("seed");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

//! Minimal offline stand-in for the `criterion` crate.
//!
//! Covers the subset used by this workspace: `Criterion::bench_function`,
//! `benchmark_group` with `bench_function` / `bench_with_input` / `finish`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark is timed as best-of-N wall clock
//! and printed to stdout. When the binary is invoked with `--test` (as
//! `cargo test` does for `harness = false` bench targets) every benchmark
//! body runs exactly once, keeping the tier-1 suite fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value. Re-export of the std hint.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named benchmark id, e.g. `BenchmarkId::new("chain", 4)` → `chain/4`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
    /// Build an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    test_mode: bool,
    best: Duration,
    iters: u32,
}

impl Bencher {
    fn run(test_mode: bool, mut f: impl FnMut(&mut Bencher)) -> (Duration, u32) {
        let mut b = Bencher {
            test_mode,
            best: Duration::MAX,
            iters: 0,
        };
        f(&mut b);
        (b.best, b.iters)
    }

    /// Time one closure: best-of-N wall clock, capped by iteration count and
    /// total budget. In `--test` mode the closure runs exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.iters = 1;
            self.best = Duration::ZERO;
            return;
        }
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        while self.iters < 30 && (self.iters < 3 || start.elapsed() < budget) {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            if dt < self.best {
                self.best = dt;
            }
            self.iters += 1;
        }
    }
}

/// Top-level benchmark driver; one per `criterion_group!`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    fn report(&self, name: &str, best: Duration, iters: u32) {
        if self.test_mode {
            println!("test {name} ... ok");
        } else {
            println!("{name:<40} best {best:>12?} over {iters} iters");
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        f: F,
    ) -> &mut Self {
        let name = name.to_string();
        let (best, iters) = Bencher::run(self.test_mode, f);
        self.report(&name, best, iters);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let (best, iters) = Bencher::run(self.c.test_mode, f);
        self.c.report(&full, best, iters);
        self
    }

    /// Run a benchmark that receives a borrowed input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let (best, iters) = Bencher::run(self.c.test_mode, |b| f(b, input));
        self.c.report(&full, best, iters);
        self
    }

    /// Finish the group (no-op; present for API parity).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0u32;
        c.bench_function("probe", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("chain", 4).to_string(), "chain/4");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}

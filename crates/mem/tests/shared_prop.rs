//! Shared-vs-private equivalence properties: whenever nothing actually
//! shares (one active demand, or `total_weight <= channels` so every
//! demand holds a private channel), the [`SharedDram`] arbiter must
//! reproduce the private [`BandwidthModel`] roofline **bit for bit** —
//! the float operations are required to be the identical expressions,
//! not merely approximately equal. Under real sharing the times must be
//! monotone: more co-runners or fewer channels never speed a leg up.

use axon_mem::{BandwidthModel, DramConfig, ExecutionLeg, SharedDram};
use proptest::prelude::*;

fn lpddr3_leg(compute_cycles: usize, dram_bytes: usize) -> ExecutionLeg {
    ExecutionLeg {
        compute_cycles,
        dram_bytes,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// One active demand of weight 1: private times, bit for bit.
    #[test]
    fn single_demand_matches_private_bit_for_bit(
        compute in 0usize..5_000_000,
        bytes in 0usize..4_000_000_000,
        channels in 1usize..17,
        clock in 100.0f64..2000.0,
    ) {
        let dram = DramConfig::lpddr3();
        let shared = SharedDram::new(dram, channels);
        let private = BandwidthModel::new(clock, dram);
        let leg = lpddr3_leg(compute, bytes);
        prop_assert_eq!(
            shared.leg_time_s(clock, leg, 1, 1).to_bits(),
            private.leg_time_s(leg).to_bits(),
            "channels={} clock={}", channels, clock
        );
    }

    /// `total_weight <= channels`: every unit holds a private channel,
    /// so weight-1 demands see private times bit for bit, and the
    /// fraction-generalized `BandwidthModel` agrees at fraction 1.
    #[test]
    fn uncontended_pod_matches_private_bit_for_bit(
        compute in 0usize..5_000_000,
        bytes in 0usize..4_000_000_000,
        channels in 1usize..17,
        total in 1usize..17,
        clock in 100.0f64..2000.0,
    ) {
        prop_assume!(total <= channels);
        let dram = DramConfig::lpddr3();
        let shared = SharedDram::new(dram, channels);
        let private = BandwidthModel::new(clock, dram);
        let leg = lpddr3_leg(compute, bytes);
        let t = shared.leg_time_s(clock, leg, 1, total);
        prop_assert_eq!(t.to_bits(), private.leg_time_s(leg).to_bits());
        prop_assert_eq!(
            t.to_bits(),
            private.leg_time_at_fraction_s(leg, shared.fraction(total)).to_bits()
        );
        // Integer-cycle billing agrees with the ceiled private roofline.
        let cycles = shared.leg_cycles(clock, compute as u64, bytes as u64, 1, total);
        let expected = if bytes == 0 {
            compute as u64
        } else {
            (compute as u64).max((dram.transfer_cycles(bytes, clock)).ceil() as u64)
        };
        prop_assert_eq!(cycles, expected);
    }

    /// Monotonicity: adding co-runners never speeds a leg up, and
    /// shrinking the channel count never speeds a leg up.
    #[test]
    fn contention_is_monotone(
        compute in 0usize..5_000_000,
        bytes in 1usize..4_000_000_000,
        channels in 1usize..9,
        total in 1usize..33,
        clock in 100.0f64..2000.0,
    ) {
        let dram = DramConfig::lpddr3();
        let shared = SharedDram::new(dram, channels);
        let leg = lpddr3_leg(compute, bytes);
        let t = shared.leg_time_s(clock, leg, 1, total);
        let more_runners = shared.leg_time_s(clock, leg, 1, total + 1);
        prop_assert!(more_runners >= t);
        if channels > 1 {
            let fewer_channels = SharedDram::new(dram, channels - 1).leg_time_s(clock, leg, 1, total);
            prop_assert!(fewer_channels >= t);
        }
        // The integer-cycle form is monotone too (ceil preserves order).
        let c = shared.leg_cycles(clock, compute as u64, bytes as u64, 1, total);
        let c_more = shared.leg_cycles(clock, compute as u64, bytes as u64, 1, total + 1);
        prop_assert!(c_more >= c);
    }

    /// A weight-`w` demand under no contention equals `w` private
    /// interfaces: exactly `w` times faster on the memory leg.
    #[test]
    fn weight_is_extra_private_interfaces_when_uncontended(
        bytes in 1usize..4_000_000_000,
        weight in 1usize..9,
        channels in 8usize..17,
        clock in 100.0f64..2000.0,
    ) {
        let dram = DramConfig::lpddr3();
        let shared = SharedDram::new(dram, channels);
        let one = shared.transfer_time_s(bytes, 1, weight);
        let w = shared.transfer_time_s(bytes, weight, weight);
        prop_assert!((one / w - weight as f64).abs() < 1e-9);
    }
}

//! Bandwidth-limited runtime: the roofline-style model behind the paper's
//! "about 1.25x speedup due to lower memory traffic" result (§5.2.1).
//!
//! A layer's wall-clock time is the maximum of its compute time and its
//! DRAM streaming time. Cutting im2col traffic shortens the memory leg;
//! when a layer is memory-bound that shortening is a direct speedup.

use crate::dram::DramConfig;

/// One execution leg: compute cycles at a clock vs bytes over DRAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionLeg {
    /// Compute cycles on the array.
    pub compute_cycles: usize,
    /// Bytes moved over the DRAM interface.
    pub dram_bytes: usize,
}

/// Roofline model combining an accelerator clock with a DRAM interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthModel {
    /// Accelerator clock in MHz.
    pub accel_clock_mhz: f64,
    /// The DRAM interface.
    pub dram: DramConfig,
}

impl BandwidthModel {
    /// Creates a model; the paper's setup is an 800 MHz-class accelerator
    /// against LPDDR3.
    pub fn new(accel_clock_mhz: f64, dram: DramConfig) -> Self {
        Self {
            accel_clock_mhz,
            dram,
        }
    }

    /// Wall-clock seconds for one leg: `max(compute, memory)` with
    /// perfectly overlapped double buffering.
    pub fn leg_time_s(&self, leg: ExecutionLeg) -> f64 {
        self.leg_time_at_fraction_s(leg, 1.0)
    }

    /// Wall-clock seconds for one leg when only `fraction` of the DRAM
    /// interface's bandwidth is allocated to it — the hook a shared
    /// arbiter ([`SharedDram`](crate::SharedDram)) uses to stretch the
    /// memory leg under contention. `fraction = 1.0` is the private
    /// interface, bit for bit (`x / 1.0 == x` in IEEE-754).
    pub fn leg_time_at_fraction_s(&self, leg: ExecutionLeg, fraction: f64) -> f64 {
        debug_assert!(fraction > 0.0, "allocated bandwidth must be positive");
        let compute = leg.compute_cycles as f64 / (self.accel_clock_mhz * 1e6);
        let memory = self.dram.transfer_time_s(leg.dram_bytes) / fraction;
        compute.max(memory)
    }

    /// `true` when the leg is limited by DRAM bandwidth.
    pub fn is_memory_bound(&self, leg: ExecutionLeg) -> bool {
        let compute = leg.compute_cycles as f64 / (self.accel_clock_mhz * 1e6);
        self.dram.transfer_time_s(leg.dram_bytes) > compute
    }

    /// Speedup obtained by reducing a leg's traffic from `before_bytes`
    /// to `after_bytes` at unchanged compute.
    ///
    /// # Examples
    ///
    /// ```
    /// use axon_mem::{BandwidthModel, DramConfig, ExecutionLeg};
    ///
    /// let model = BandwidthModel::new(800.0, DramConfig::lpddr3());
    /// // A fully memory-bound layer whose traffic halves runs 2x faster.
    /// let s = model.traffic_reduction_speedup(1000, 2_000_000_000, 1_000_000_000);
    /// assert!((s - 2.0).abs() < 1e-6);
    /// ```
    pub fn traffic_reduction_speedup(
        &self,
        compute_cycles: usize,
        before_bytes: usize,
        after_bytes: usize,
    ) -> f64 {
        let before = self.leg_time_s(ExecutionLeg {
            compute_cycles,
            dram_bytes: before_bytes,
        });
        let after = self.leg_time_s(ExecutionLeg {
            compute_cycles,
            dram_bytes: after_bytes,
        });
        before / after
    }
}

impl Default for BandwidthModel {
    fn default() -> Self {
        Self::new(800.0, DramConfig::lpddr3())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_leg_sees_no_speedup() {
        let m = BandwidthModel::default();
        // Tiny traffic, huge compute.
        let s = m.traffic_reduction_speedup(1_000_000_000, 1000, 500);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_detection() {
        let m = BandwidthModel::default();
        // 6.4 GB takes 1 s; 1000 cycles at 800 MHz is ~1.25 us.
        assert!(m.is_memory_bound(ExecutionLeg {
            compute_cycles: 1000,
            dram_bytes: 6_400_000_000,
        }));
        assert!(!m.is_memory_bound(ExecutionLeg {
            compute_cycles: 800_000_000,
            dram_bytes: 64,
        }));
    }

    #[test]
    fn fraction_one_is_private_bit_for_bit() {
        let m = BandwidthModel::default();
        for (compute, bytes) in [(1000, 2_000_000_000), (800_000_000, 64), (0, 0)] {
            let leg = ExecutionLeg {
                compute_cycles: compute,
                dram_bytes: bytes,
            };
            assert_eq!(
                m.leg_time_s(leg).to_bits(),
                m.leg_time_at_fraction_s(leg, 1.0).to_bits()
            );
        }
    }

    #[test]
    fn halving_the_fraction_doubles_a_memory_bound_leg() {
        let m = BandwidthModel::default();
        let leg = ExecutionLeg {
            compute_cycles: 1000,
            dram_bytes: 6_400_000_000,
        };
        let full = m.leg_time_at_fraction_s(leg, 1.0);
        let half = m.leg_time_at_fraction_s(leg, 0.5);
        assert!((half / full - 2.0).abs() < 1e-12);
    }

    #[test]
    fn partial_memory_bound_gives_intermediate_speedup() {
        let m = BandwidthModel::default();
        // Compute takes 0.5 s; traffic before 6.4 GB (1 s), after 3.2 GB
        // (0.5 s): speedup = 1.0 / 0.5 = 2 -> capped by compute to 2? No:
        // after = max(0.5, 0.5) = 0.5 -> speedup 2.0; shrink further and
        // the compute floor holds.
        let s = m.traffic_reduction_speedup(400_000_000, 6_400_000_000, 1_600_000_000);
        assert!((s - 2.0).abs() < 1e-9, "s = {s}");
    }
}

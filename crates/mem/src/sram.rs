//! On-chip SRAM scratchpad model with access counting and double
//! buffering.
//!
//! The paper's architecture (like SCALE-sim's) keeps ifmap, filter and
//! ofmap scratchpads between DRAM and the array. This model tracks
//! capacity, refills and access counts; it does not store data — the
//! functional values live in the simulator — but it enforces the
//! fill-before-read discipline so traffic accounting stays honest.

use std::fmt;

/// Role of a scratchpad, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferKind {
    /// Input feature map buffer.
    Ifmap,
    /// Filter/weight buffer.
    Filter,
    /// Output feature map buffer.
    Ofmap,
}

impl fmt::Display for BufferKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferKind::Ifmap => f.write_str("ifmap"),
            BufferKind::Filter => f.write_str("filter"),
            BufferKind::Ofmap => f.write_str("ofmap"),
        }
    }
}

/// A capacity-tracked scratchpad.
///
/// # Examples
///
/// ```
/// use axon_mem::{BufferKind, SramBuffer};
///
/// let mut buf = SramBuffer::new(BufferKind::Ifmap, 1024);
/// let refills = buf.fill(3000); // needs 3 refills of the 1 KiB buffer
/// assert_eq!(refills, 3);
/// buf.read(3000);
/// assert_eq!(buf.stats().reads, 3000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SramBuffer {
    kind: BufferKind,
    capacity_bytes: usize,
    stats: SramStats,
}

/// Access counters of one scratchpad.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SramStats {
    /// Bytes read by the array.
    pub reads: usize,
    /// Bytes written by the array (ofmap) or by refills.
    pub writes: usize,
    /// Number of DRAM refill bursts.
    pub refills: usize,
    /// Bytes fetched from DRAM.
    pub dram_bytes: usize,
}

impl SramBuffer {
    /// Creates a scratchpad of `capacity_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn new(kind: BufferKind, capacity_bytes: usize) -> Self {
        assert!(capacity_bytes > 0, "SRAM capacity must be non-zero");
        Self {
            kind,
            capacity_bytes,
            stats: SramStats::default(),
        }
    }

    /// The buffer's role.
    pub fn kind(&self) -> BufferKind {
        self.kind
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Stages `bytes` from DRAM, returning the number of refill bursts
    /// (ceil of bytes over capacity, double-buffered halves overlap and
    /// are not modeled separately).
    pub fn fill(&mut self, bytes: usize) -> usize {
        let bursts = bytes
            .div_ceil(self.capacity_bytes)
            .max(usize::from(bytes > 0));
        self.stats.refills += bursts;
        self.stats.dram_bytes += bytes;
        self.stats.writes += bytes;
        bursts
    }

    /// Records `bytes` read by the array.
    pub fn read(&mut self, bytes: usize) {
        self.stats.reads += bytes;
    }

    /// Records `bytes` written by the array (for the ofmap buffer).
    pub fn write_back(&mut self, bytes: usize) {
        self.stats.writes += bytes;
        self.stats.dram_bytes += bytes;
    }

    /// Current access counters.
    pub fn stats(&self) -> SramStats {
        self.stats
    }

    /// Ratio of array-side reads to DRAM-side bytes — the on-chip reuse
    /// multiplier this buffer achieves.
    pub fn reuse_factor(&self) -> f64 {
        if self.stats.dram_bytes == 0 {
            0.0
        } else {
            self.stats.reads as f64 / self.stats.dram_bytes as f64
        }
    }
}

impl fmt::Display for SramBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} SRAM {} KiB: {} reads, {} refills, {} DRAM bytes",
            self.kind,
            self.capacity_bytes / 1024,
            self.stats.reads,
            self.stats.refills,
            self.stats.dram_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_counts_bursts() {
        let mut b = SramBuffer::new(BufferKind::Filter, 100);
        assert_eq!(b.fill(250), 3);
        assert_eq!(b.fill(100), 1);
        assert_eq!(b.fill(0), 0);
        assert_eq!(b.stats().refills, 4);
        assert_eq!(b.stats().dram_bytes, 350);
    }

    #[test]
    fn reuse_factor_tracks_reads_over_dram() {
        let mut b = SramBuffer::new(BufferKind::Ifmap, 1024);
        b.fill(1000);
        b.read(4000); // each staged byte read 4x by the array
        assert!((b.reuse_factor() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn write_back_adds_dram_traffic() {
        let mut b = SramBuffer::new(BufferKind::Ofmap, 512);
        b.write_back(2048);
        assert_eq!(b.stats().dram_bytes, 2048);
        assert_eq!(b.reuse_factor(), 0.0);
    }

    #[test]
    fn display_mentions_kind() {
        let b = SramBuffer::new(BufferKind::Ifmap, 2048);
        assert!(b.to_string().contains("ifmap"));
    }
}

//! Pod-level shared-DRAM arbiter: couples transfer time to co-running
//! memory traffic.
//!
//! The private [`BandwidthModel`](crate::BandwidthModel) gives every
//! array its own contention-free interface — fine for a single-array
//! study, but it lets a pod simulator scale out for free: eight arrays
//! streaming eight decode batches are billed as if each had the full
//! 6.4 GB/s to itself. [`SharedDram`] models the honest alternative: the
//! pod owns `channels` DRAM channels, each one [`DramConfig`] interface
//! wide, and co-running demands slice them fairly.
//!
//! ## Allocation law
//!
//! A demand (one running job) has an integer *weight* — the number of
//! arrays it occupies, since each array drives its own operand stream —
//! and the pod has a total active weight `W` (the sum over running
//! jobs). Fair slicing allocates each unit of weight
//!
//! ```text
//! fraction(W) = min(1, channels / W)
//! ```
//!
//! of one interface's bandwidth, so a weight-`w` demand streams at
//! `w * fraction(W) * B` bytes/s. Two limits anchor the model:
//!
//! * **Uncontended** (`W <= channels`): every demand gets `fraction = 1`
//!   — exactly the private [`BandwidthModel`](crate::BandwidthModel),
//!   bit for bit (the division by `1.0` is exact in IEEE-754). This is
//!   the property the `shared_prop` tests pin.
//! * **Saturated** (`W > channels`): the pod moves `channels * B`
//!   bytes/s in aggregate no matter how many demands pile on; each
//!   demand's effective bandwidth shrinks as `1/W`.
//!
//! Shrinking `channels` at fixed demand never shortens any transfer, so
//! service times are monotone in the channel count — the invariant the
//! `contention_sweep` benchmark asserts end to end.
//!
//! # Examples
//!
//! ```
//! use axon_mem::{DramConfig, ExecutionLeg, SharedDram};
//!
//! let shared = SharedDram::new(DramConfig::lpddr3(), 2);
//! let leg = ExecutionLeg { compute_cycles: 1000, dram_bytes: 6_400_000 };
//! // Alone (1 active weight <= 2 channels): the private roofline, 1 ms.
//! let alone = shared.leg_time_s(800.0, leg, 1, 1);
//! // Four co-running single-array jobs share 2 channels: 2x slower.
//! let contended = shared.leg_time_s(800.0, leg, 1, 4);
//! assert!((contended / alone - 2.0).abs() < 1e-12);
//! ```

use crate::bandwidth::ExecutionLeg;
use crate::dram::DramConfig;
use std::fmt;

/// A pod's shared DRAM: `channels` channels of one [`DramConfig`]
/// interface each, fair-share sliced across active demands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedDram {
    /// The per-channel interface (bandwidth, energy, width, clock).
    pub dram: DramConfig,
    /// Independent channels. A pod with `channels >= arrays` never
    /// contends (each array can hold a private channel).
    pub channels: usize,
}

impl SharedDram {
    /// Creates the arbiter. Panics if `channels == 0`.
    pub fn new(dram: DramConfig, channels: usize) -> Self {
        assert!(channels > 0, "a shared DRAM needs at least one channel");
        Self { dram, channels }
    }

    /// An effectively-private configuration: enough channels that no
    /// realistic demand population ever contends.
    pub fn private(dram: DramConfig) -> Self {
        Self {
            dram,
            channels: usize::MAX,
        }
    }

    /// The bandwidth fraction of one interface allocated to each unit of
    /// weight when `total_weight` units are active: `min(1, C / W)`.
    /// `total_weight == 0` (idle pod) yields `1.0`.
    pub fn fraction(&self, total_weight: usize) -> f64 {
        if total_weight <= self.channels {
            1.0
        } else {
            self.channels as f64 / total_weight as f64
        }
    }

    /// Bandwidth allocated to a weight-`weight` demand when
    /// `total_weight` units are active pod-wide, in bytes/s.
    pub fn allocated_bandwidth(&self, weight: usize, total_weight: usize) -> f64 {
        weight as f64 * self.fraction(total_weight) * self.dram.bandwidth_bytes_per_s
    }

    /// Seconds to move `bytes` for a weight-`weight` demand under
    /// `total_weight` active units. With `total_weight <= channels` this
    /// equals `weight` private interfaces, bit for bit.
    pub fn transfer_time_s(&self, bytes: usize, weight: usize, total_weight: usize) -> f64 {
        debug_assert!(weight > 0, "a demand needs positive weight");
        self.dram.transfer_time_s(bytes) / (weight as f64 * self.fraction(total_weight))
    }

    /// [`SharedDram::transfer_time_s`] expressed in cycles of an
    /// accelerator clocked at `accel_clock_mhz`.
    pub fn transfer_cycles(
        &self,
        bytes: usize,
        accel_clock_mhz: f64,
        weight: usize,
        total_weight: usize,
    ) -> f64 {
        self.transfer_time_s(bytes, weight, total_weight) * accel_clock_mhz * 1e6
    }

    /// Roofline wall-clock seconds for one leg under contention:
    /// `max(compute, shared-bandwidth transfer)` with perfectly
    /// overlapped double buffering — the contended generalization of
    /// [`BandwidthModel::leg_time_s`](crate::BandwidthModel::leg_time_s).
    pub fn leg_time_s(
        &self,
        accel_clock_mhz: f64,
        leg: ExecutionLeg,
        weight: usize,
        total_weight: usize,
    ) -> f64 {
        let compute = leg.compute_cycles as f64 / (accel_clock_mhz * 1e6);
        compute.max(self.transfer_time_s(leg.dram_bytes, weight, total_weight))
    }

    /// Integer-cycle leg time at `accel_clock_mhz`: compute cycles, or
    /// the contended transfer rounded *up* to whole cycles, whichever is
    /// larger. This is the exact arithmetic the pod simulator bills
    /// with, so its event edges stay integral and deterministic.
    pub fn leg_cycles(
        &self,
        accel_clock_mhz: f64,
        compute_cycles: u64,
        dram_bytes: u64,
        weight: usize,
        total_weight: usize,
    ) -> u64 {
        if dram_bytes == 0 {
            return compute_cycles;
        }
        let mem = self.transfer_cycles(dram_bytes as usize, accel_clock_mhz, weight, total_weight);
        compute_cycles.max(mem.ceil() as u64)
    }

    /// Cheap contended estimate of a whole walk: [`SharedDram::leg_cycles`]
    /// summed over `(compute_cycles, dram_bytes)` legs at one fixed
    /// allocation — the query a *scheduler* consults before committing to
    /// a plan, as opposed to the event-driven re-timing the pod simulator
    /// bills with afterwards.
    ///
    /// The estimate is exact when the co-running set stays fixed for the
    /// walk's duration; otherwise it can err in either direction —
    /// under-estimating if demand grows mid-walk, over-estimating if
    /// co-runners finish and the fair-share denominator shrinks (the
    /// event-driven re-timing in the pod simulator then bills less than
    /// estimated). It costs one multiply-compare per leg, so a planner
    /// can afford to score every candidate plan.
    ///
    /// # Examples
    ///
    /// ```
    /// use axon_mem::{DramConfig, SharedDram};
    ///
    /// let shared = SharedDram::new(DramConfig::lpddr3(), 1);
    /// let legs = [(100u64, 6400u64), (800, 6400)];
    /// // Alone: max(100, 800) + max(800, 800) cycles at 800 MHz.
    /// assert_eq!(shared.schedule_cycles(800.0, legs, 1, 1), 1600);
    /// // Two co-runners halve the bandwidth: both legs go memory-bound.
    /// assert_eq!(shared.schedule_cycles(800.0, legs, 1, 2), 3200);
    /// ```
    pub fn schedule_cycles<I>(
        &self,
        accel_clock_mhz: f64,
        legs: I,
        weight: usize,
        total_weight: usize,
    ) -> u64
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        legs.into_iter()
            .map(|(compute, bytes)| {
                self.leg_cycles(accel_clock_mhz, compute, bytes, weight, total_weight)
            })
            .sum()
    }
}

impl fmt::Display for SharedDram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.channels == usize::MAX {
            write!(f, "{} x private channels", self.dram)
        } else {
            write!(f, "{} x {} shared channels", self.dram, self.channels)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::BandwidthModel;

    #[test]
    fn uncontended_equals_private_interface() {
        let shared = SharedDram::new(DramConfig::lpddr3(), 4);
        let private = BandwidthModel::new(800.0, DramConfig::lpddr3());
        let leg = ExecutionLeg {
            compute_cycles: 5000,
            dram_bytes: 1_000_000,
        };
        for total in 1..=4 {
            let t = shared.leg_time_s(800.0, leg, 1, total);
            assert_eq!(t.to_bits(), private.leg_time_s(leg).to_bits());
        }
    }

    #[test]
    fn saturation_caps_aggregate_bandwidth() {
        let shared = SharedDram::new(DramConfig::lpddr3(), 2);
        // 8 single-weight demands over 2 channels: each at B/4, but the
        // aggregate stays at 2 B.
        let per = shared.allocated_bandwidth(1, 8);
        assert!((per - shared.dram.bandwidth_bytes_per_s / 4.0).abs() < 1e-3);
        assert!((8.0 * per - 2.0 * shared.dram.bandwidth_bytes_per_s).abs() < 1e-3);
    }

    #[test]
    fn fewer_channels_never_faster() {
        let leg = ExecutionLeg {
            compute_cycles: 100,
            dram_bytes: 10_000_000,
        };
        let mut last = f64::INFINITY;
        for channels in 1..=8 {
            let shared = SharedDram::new(DramConfig::lpddr3(), channels);
            let t = shared.leg_time_s(800.0, leg, 1, 6);
            assert!(t <= last, "channels {channels}: {t} > {last}");
            last = t;
        }
    }

    #[test]
    fn weight_scales_like_extra_interfaces() {
        let shared = SharedDram::new(DramConfig::lpddr3(), 8);
        // A 4-array sharded job under no contention streams 4x as fast.
        let one = shared.transfer_time_s(1 << 20, 1, 4);
        let four = shared.transfer_time_s(1 << 20, 4, 4);
        assert!((one / four - 4.0).abs() < 1e-12);
    }

    #[test]
    fn leg_cycles_rounds_memory_up_and_is_compute_floored() {
        let shared = SharedDram::new(DramConfig::lpddr3(), 1);
        // 6400 bytes at 6.4 GB/s = 1 us = 800 cycles at 800 MHz.
        assert_eq!(shared.leg_cycles(800.0, 100, 6400, 1, 1), 800);
        // Contended 2x: 1600 cycles.
        assert_eq!(shared.leg_cycles(800.0, 100, 6400, 1, 2), 1600);
        // Compute-bound leg: the memory term vanishes.
        assert_eq!(shared.leg_cycles(800.0, 10_000, 6400, 1, 2), 10_000);
        // Zero bytes short-circuits.
        assert_eq!(shared.leg_cycles(800.0, 7, 0, 1, 100), 7);
    }

    #[test]
    fn schedule_estimate_matches_leg_sum_and_is_monotone_in_demand() {
        let shared = SharedDram::new(DramConfig::lpddr3(), 2);
        let legs = [(500u64, 100_000u64), (2000, 0), (10, 1 << 20)];
        let by_hand: u64 = legs
            .iter()
            .map(|&(c, b)| shared.leg_cycles(800.0, c, b, 1, 5))
            .sum();
        assert_eq!(shared.schedule_cycles(800.0, legs, 1, 5), by_hand);
        // More co-running demand never shortens the estimate.
        let mut last = 0;
        for total in 1..=8 {
            let t = shared.schedule_cycles(800.0, legs, 1, total);
            assert!(t >= last, "total {total}: {t} < {last}");
            last = t;
        }
        // Empty walk estimates to zero.
        assert_eq!(shared.schedule_cycles(800.0, [], 1, 1), 0);
    }

    #[test]
    fn private_never_contends() {
        let p = SharedDram::private(DramConfig::lpddr3());
        assert_eq!(p.fraction(1_000_000), 1.0);
        assert!(p.to_string().contains("private"));
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        SharedDram::new(DramConfig::lpddr3(), 0);
    }
}

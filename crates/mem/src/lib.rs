//! # axon-mem
//!
//! Memory-system models for the Axon reproduction: capacity-tracked SRAM
//! scratchpads, an LPDDR3 DRAM energy/bandwidth model (the paper's
//! §5.2.1 abstraction: 120 pJ/byte, 32-bit @ 800 MHz, 6.4 GB/s), a
//! roofline-style bandwidth-limited runtime model, and a pod-level
//! shared-DRAM arbiter ([`SharedDram`]) that slices the channels fairly
//! across co-running demands (see `docs/memory.md`).
//!
//! ## Example
//!
//! ```
//! use axon_mem::{DramConfig, EnergyReport};
//!
//! // ResNet50 conv traffic with software vs on-chip im2col (paper §5.2.1).
//! let report = EnergyReport::new(&DramConfig::lpddr3(), 261_200_000, 153_500_000);
//! assert!(report.saved_mj() > 12.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod double_buffer;
mod dram;
mod energy;
mod shared;
mod sram;

pub use bandwidth::{BandwidthModel, ExecutionLeg};
pub use double_buffer::{schedule_double_buffered, StreamSchedule, TileDemand};
pub use dram::DramConfig;
pub use energy::EnergyReport;
pub use shared::SharedDram;
pub use sram::{BufferKind, SramBuffer, SramStats};

//! Inference-energy accounting from DRAM traffic (paper §5.2.1).

use crate::dram::DramConfig;
use std::fmt;

/// Before/after DRAM energy of one network under a traffic optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Traffic without the optimization, in bytes.
    pub before_bytes: usize,
    /// Traffic with the optimization, in bytes.
    pub after_bytes: usize,
    /// DRAM energy before, in millijoules.
    pub before_mj: f64,
    /// DRAM energy after, in millijoules.
    pub after_mj: f64,
}

impl EnergyReport {
    /// Builds a report from byte counts and a DRAM model.
    pub fn new(dram: &DramConfig, before_bytes: usize, after_bytes: usize) -> Self {
        Self {
            before_bytes,
            after_bytes,
            before_mj: dram.transfer_energy_mj(before_bytes),
            after_mj: dram.transfer_energy_mj(after_bytes),
        }
    }

    /// Millijoules saved.
    pub fn saved_mj(&self) -> f64 {
        self.before_mj - self.after_mj
    }

    /// Energy reduction factor `before / after` (the paper reports 2.17x
    /// on average over ResNet50 and YOLOv3).
    pub fn reduction_factor(&self) -> f64 {
        self.before_mj / self.after_mj
    }
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} MB / {:.1} mJ -> {:.1} MB / {:.1} mJ (saved {:.1} mJ, {:.2}x)",
            self.before_bytes as f64 / 1e6,
            self.before_mj,
            self.after_bytes as f64 / 1e6,
            self.after_mj,
            self.saved_mj(),
            self.reduction_factor()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_numbers_track_paper() {
        // Paper: 261.2 MB -> 153.5 MB saves ~12 mJ at 120 pJ/B.
        let r = EnergyReport::new(&DramConfig::lpddr3(), 261_200_000, 153_500_000);
        assert!((r.saved_mj() - 12.9).abs() < 0.2, "saved {}", r.saved_mj());
        assert!((r.reduction_factor() - 1.70).abs() < 0.02);
    }

    #[test]
    fn yolo_numbers_track_paper() {
        let r = EnergyReport::new(&DramConfig::lpddr3(), 2_540_000_000, 1_117_000_000);
        assert!((r.saved_mj() - 170.8).abs() < 1.0);
        assert!((r.reduction_factor() - 2.27).abs() < 0.02);
    }

    #[test]
    fn display_contains_factor() {
        let r = EnergyReport::new(&DramConfig::lpddr3(), 200, 100);
        assert!(r.to_string().contains("2.00x"));
    }
}

//! Off-chip DRAM model: constant energy-per-byte plus a peak-bandwidth
//! ceiling, the abstraction the paper itself uses for its §5.2.1 energy
//! analysis (LPDDR3 numbers from the DRAMPower tool).

use std::fmt;

/// DRAM interface description.
///
/// # Examples
///
/// ```
/// use axon_mem::DramConfig;
///
/// let dram = DramConfig::lpddr3();
/// // Paper: saving 107.7 MB of traffic saves ~12 mJ on ResNet50.
/// let mj = dram.transfer_energy_mj(107_700_000);
/// assert!((mj - 12.9).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Access energy in picojoules per byte.
    pub energy_pj_per_byte: f64,
    /// Peak sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Interface width in bits.
    pub bus_width_bits: u32,
    /// Interface clock in MHz.
    pub clock_mhz: u32,
}

impl DramConfig {
    /// The paper's LPDDR3 configuration: 120 pJ/byte (per Chandrasekar et
    /// al., DRAMPower), 32-bit interface at 800 MHz, 6.4 GB/s peak.
    pub fn lpddr3() -> Self {
        Self {
            energy_pj_per_byte: 120.0,
            bandwidth_bytes_per_s: 6.4e9,
            bus_width_bits: 32,
            clock_mhz: 800,
        }
    }

    /// Energy to transfer `bytes`, in millijoules.
    pub fn transfer_energy_mj(&self, bytes: usize) -> f64 {
        bytes as f64 * self.energy_pj_per_byte * 1e-9
    }

    /// Time to transfer `bytes` at peak bandwidth, in seconds.
    pub fn transfer_time_s(&self, bytes: usize) -> f64 {
        bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Transfer time expressed in cycles of an accelerator clocked at
    /// `accel_clock_mhz`.
    pub fn transfer_cycles(&self, bytes: usize, accel_clock_mhz: f64) -> f64 {
        self.transfer_time_s(bytes) * accel_clock_mhz * 1e6
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::lpddr3()
    }
}

impl fmt::Display for DramConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DRAM {}-bit @ {} MHz, {:.1} GB/s, {:.0} pJ/B",
            self.bus_width_bits,
            self.clock_mhz,
            self.bandwidth_bytes_per_s / 1e9,
            self.energy_pj_per_byte
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpddr3_matches_paper_constants() {
        let d = DramConfig::lpddr3();
        assert_eq!(d.energy_pj_per_byte, 120.0);
        assert_eq!(d.bandwidth_bytes_per_s, 6.4e9);
        assert_eq!(d.bus_width_bits, 32);
        assert_eq!(d.clock_mhz, 800);
    }

    #[test]
    fn yolo_energy_saving_matches_paper() {
        // Paper: YOLOv3 traffic drops 2540 MB -> 1117 MB, saving ~170 mJ.
        let d = DramConfig::lpddr3();
        let saved = d.transfer_energy_mj(2_540_000_000 - 1_117_000_000);
        assert!((saved - 170.76).abs() < 1.0, "saved {saved} mJ");
    }

    #[test]
    fn transfer_time_and_cycles() {
        let d = DramConfig::lpddr3();
        // 6.4 GB at 6.4 GB/s takes 1 s.
        assert!((d.transfer_time_s(6_400_000_000) - 1.0).abs() < 1e-9);
        // At a 1 GHz accelerator clock that is 1e9 cycles.
        let cyc = d.transfer_cycles(6_400_000_000, 1000.0);
        assert!((cyc - 1e9).abs() / 1e9 < 1e-9);
    }
}

//! Double-buffered tile streaming: per-tile stall analysis.
//!
//! While the array computes on one half of a scratchpad, the other half
//! is refilled from DRAM. A tile stalls only when its refill takes longer
//! than the previous tile's compute. This refines the whole-network
//! roofline of [`crate::BandwidthModel`] down to tile granularity.

use crate::dram::DramConfig;
use std::fmt;

/// One tile's demands: compute cycles and bytes to stage for the *next*
/// tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileDemand {
    /// Cycles the array computes on this tile.
    pub compute_cycles: usize,
    /// Bytes that must be staged for the following tile.
    pub refill_bytes: usize,
}

/// Result of scheduling a tile sequence through a double buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSchedule {
    /// Total cycles including stalls.
    pub total_cycles: usize,
    /// Cycles the array sat idle waiting for refills.
    pub stall_cycles: usize,
    /// Number of tiles that stalled.
    pub stalled_tiles: usize,
}

impl StreamSchedule {
    /// Fraction of total time lost to stalls.
    pub fn stall_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.total_cycles as f64
        }
    }
}

impl fmt::Display for StreamSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles ({} stalled over {} tiles, {:.1}%)",
            self.total_cycles,
            self.stall_cycles,
            self.stalled_tiles,
            100.0 * self.stall_fraction()
        )
    }
}

/// Schedules a sequence of tiles through a double buffer backed by
/// `dram`, with the array clocked at `accel_clock_mhz`.
///
/// The first tile's fill is exposed (cold start); every later refill
/// overlaps the preceding tile's compute and stalls only for the excess.
///
/// # Examples
///
/// ```
/// use axon_mem::{schedule_double_buffered, DramConfig, TileDemand};
///
/// let tiles = vec![TileDemand { compute_cycles: 1000, refill_bytes: 64 }; 8];
/// let s = schedule_double_buffered(&tiles, &DramConfig::lpddr3(), 800.0);
/// // Tiny refills hide entirely behind compute.
/// assert_eq!(s.stall_cycles, 0);
/// ```
pub fn schedule_double_buffered(
    tiles: &[TileDemand],
    dram: &DramConfig,
    accel_clock_mhz: f64,
) -> StreamSchedule {
    let mut total = 0usize;
    let mut stalls = 0usize;
    let mut stalled_tiles = 0usize;

    let refill_cycles = |bytes: usize| dram.transfer_cycles(bytes, accel_clock_mhz).ceil() as usize;

    if let Some(first) = tiles.first() {
        // Cold start: the first tile's own data must land before compute.
        total += refill_cycles(first.refill_bytes);
    }
    for pair in tiles.windows(2) {
        let cur = pair[0];
        let nxt = pair[1];
        total += cur.compute_cycles;
        let refill = refill_cycles(nxt.refill_bytes);
        if refill > cur.compute_cycles {
            let stall = refill - cur.compute_cycles;
            total += stall;
            stalls += stall;
            stalled_tiles += 1;
        }
    }
    if let Some(last) = tiles.last() {
        total += last.compute_cycles;
    }
    StreamSchedule {
        total_cycles: total,
        stall_cycles: stalls,
        stalled_tiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> DramConfig {
        DramConfig::lpddr3()
    }

    #[test]
    fn compute_bound_stream_never_stalls() {
        let tiles = vec![
            TileDemand {
                compute_cycles: 10_000,
                refill_bytes: 1024,
            };
            10
        ];
        let s = schedule_double_buffered(&tiles, &dram(), 800.0);
        assert_eq!(s.stall_cycles, 0);
        assert_eq!(s.stalled_tiles, 0);
        // Total = cold fill + 10 * compute.
        assert!(s.total_cycles >= 100_000);
    }

    #[test]
    fn memory_bound_stream_stalls_every_tile() {
        // 1 MB refills at 6.4 GB/s = 156 us; 100 cycles at 800 MHz = 125 ns.
        let tiles = vec![
            TileDemand {
                compute_cycles: 100,
                refill_bytes: 1_000_000,
            };
            4
        ];
        let s = schedule_double_buffered(&tiles, &dram(), 800.0);
        assert_eq!(s.stalled_tiles, 3);
        // The cold-start fill is not a stall; the 3 inter-tile waits
        // dominate everything else.
        assert!(s.stall_fraction() > 0.7, "{}", s.stall_fraction());
    }

    #[test]
    fn halving_traffic_halves_memory_bound_time() {
        let mk = |bytes| {
            vec![
                TileDemand {
                    compute_cycles: 10,
                    refill_bytes: bytes,
                };
                16
            ]
        };
        let full = schedule_double_buffered(&mk(2_000_000), &dram(), 800.0);
        let half = schedule_double_buffered(&mk(1_000_000), &dram(), 800.0);
        let ratio = full.total_cycles as f64 / half.total_cycles as f64;
        assert!((1.9..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn empty_stream_is_zero() {
        let s = schedule_double_buffered(&[], &dram(), 800.0);
        assert_eq!(s.total_cycles, 0);
        assert_eq!(s.stall_fraction(), 0.0);
    }
}
